//! Alert-triggered flight recorder.
//!
//! A burn-rate alert firing at 3 a.m. is only useful if it arrives
//! with evidence. The flight recorder keeps a bounded ring of recent
//! diagnostic bundles: when an SLO transitions to firing
//! ([`FlightRecorder::slo_firing`], called by the winner of the
//! tracker's CAS transition) or a task reaches a terminal
//! `TaskStatus::Failed` ([`FlightRecorder::task_failed`]), it
//! atomically freezes everything the observability layer knows at that
//! instant — the profiler's collapsed-stack slice, the ranked
//! contention table, the most recent exemplar span trees, and the
//! metrics delta since the previous freeze — into a [`Bundle`]
//! retrievable later via `dlhub bundle`.
//!
//! # Cost discipline
//!
//! Like the profiler, the handle wraps an `Arc<OnceLock<..>>`: a
//! disabled recorder's trigger hooks are one atomic load and a branch,
//! and no ring, baseline snapshot or source handles exist anywhere.
//! Enabled, the *triggers* are still the only cost — nothing is
//! recorded continuously; the freeze itself runs on the (already slow,
//! already failing) alerting path.
//!
//! # Freeze semantics
//!
//! One mutex serialises freezes: each bundle's `metrics_delta` is
//! computed against the baseline left by the previous freeze (the
//! first freeze uses the enable-time baseline), so consecutive bundle
//! deltas partition the deployment's metric history. The bundle ring
//! holds the `capacity` most recent bundles; a bounded event ring
//! remembers the trigger line of every freeze, including bundles that
//! have since rotated out.

use std::collections::hash_map::DefaultHasher;
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use serde_json::{json, Value};

use crate::contention::{render_contention, ContentionRegistry, ContentionSnapshot};
use crate::metrics::{MetricsSnapshot, Registry};
use crate::profile::{ProfileReport, ProfilerHandle};
use crate::trace::{now_ns, TraceExport, Tracer};

/// Trigger lines remembered after their bundles rotate out.
const EVENT_RING: usize = 256;

/// Most recent traces embedded in a bundle.
const BUNDLE_TRACES: usize = 8;

/// Everything a freeze snapshots. Handles are cheap clones sharing the
/// deployment's state.
#[derive(Clone)]
pub struct RecorderSources {
    /// Span store for exemplar trace trees.
    pub tracer: Tracer,
    /// Metrics registry for the per-bundle delta.
    pub metrics: Registry,
    /// Contention sites for the ranked wait table.
    pub contention: ContentionRegistry,
    /// Profiler for the collapsed-stack slice.
    pub profiler: ProfilerHandle,
}

/// Why a bundle was frozen.
#[derive(Debug, Clone, PartialEq)]
pub enum BundleTrigger {
    /// An SLO transitioned to firing.
    SloFiring {
        /// Servable whose objective fired.
        servable: String,
        /// `"latency"` or `"availability"`.
        objective: String,
        /// Fast-window burn rate at the transition.
        burn_fast: f64,
        /// Slow-window burn rate at the transition.
        burn_slow: f64,
    },
    /// A task reached terminal `Failed`.
    TaskFailed {
        /// Task id.
        task: String,
        /// Servable the task targeted.
        servable: String,
        /// Attempts consumed before giving up.
        attempts: u32,
        /// Final attempt's error.
        last_error: String,
    },
    /// The admission controller crossed its shed-storm threshold: load
    /// shedding went from incidental to sustained inside one window.
    ShedStorm {
        /// Requests shed within the storm window.
        shed: u64,
        /// Storm window length in milliseconds.
        window_ms: u64,
    },
}

impl BundleTrigger {
    /// Short kind tag (`slo_firing` / `task_failed` / `shed_storm`).
    pub fn kind(&self) -> &'static str {
        match self {
            BundleTrigger::SloFiring { .. } => "slo_firing",
            BundleTrigger::TaskFailed { .. } => "task_failed",
            BundleTrigger::ShedStorm { .. } => "shed_storm",
        }
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        match self {
            BundleTrigger::SloFiring {
                servable,
                objective,
                burn_fast,
                burn_slow,
            } => format!(
                "slo {servable} {objective} firing (burn fast {burn_fast:.2} / slow {burn_slow:.2})"
            ),
            BundleTrigger::TaskFailed {
                task,
                servable,
                attempts,
                last_error,
            } => format!("task {task} ({servable}) failed after {attempts} attempts: {last_error}"),
            BundleTrigger::ShedStorm { shed, window_ms } => {
                format!("admission shed storm: {shed} requests shed in {window_ms} ms")
            }
        }
    }

    /// The trigger's deterministic identity: every field that is a
    /// pure function of the workload and fault schedule. Burn rates,
    /// task ids and timestamps are timing-dependent and excluded, so
    /// two seeded chaos runs that fail the same way produce bundles
    /// with equal keys (see [`Bundle::fingerprint`]).
    pub fn deterministic_key(&self) -> String {
        match self {
            BundleTrigger::SloFiring {
                servable,
                objective,
                ..
            } => format!("slo_firing:{servable}:{objective}"),
            BundleTrigger::TaskFailed {
                servable,
                attempts,
                last_error,
                ..
            } => format!("task_failed:{servable}:{attempts}:{last_error}"),
            // Shed counts under a seeded sim are workload-determined;
            // the window is config. Both belong to the identity.
            BundleTrigger::ShedStorm { shed, window_ms } => {
                format!("shed_storm:{shed}:{window_ms}")
            }
        }
    }
}

/// One frozen diagnostic bundle.
#[derive(Debug, Clone)]
pub struct Bundle {
    /// Monotonic bundle id (1-based, per recorder).
    pub id: u64,
    /// Freeze time (ns since the process trace epoch).
    pub at_ns: u64,
    /// What froze it.
    pub trigger: BundleTrigger,
    /// Profiler slice at freeze time (`None` when profiling is off).
    pub profile: Option<ProfileReport>,
    /// Contention table at freeze time, ranked by total wait.
    pub contention: Vec<ContentionSnapshot>,
    /// Ids of the embedded recent traces, most recent first.
    pub trace_ids: Vec<u64>,
    /// Rendered span trees of those traces.
    pub traces: String,
    /// Metric activity since the previous freeze (or since enable).
    pub metrics_delta: MetricsSnapshot,
}

impl Bundle {
    /// Hash of the trigger's deterministic identity — equal across
    /// seeded reruns that fail identically.
    pub fn fingerprint(&self) -> u64 {
        let mut hasher = DefaultHasher::new();
        self.trigger.deterministic_key().hash(&mut hasher);
        hasher.finish()
    }

    /// JSON form for `dlhub bundle --json`.
    pub fn to_json(&self) -> Value {
        json!({
            "id": self.id,
            "at_ns": self.at_ns,
            "kind": self.trigger.kind(),
            "trigger": self.trigger.summary(),
            "fingerprint": format!("{:#018x}", self.fingerprint()),
            "profile": self.profile.as_ref().map(|p| p.to_json()),
            "contention": self.contention.iter().map(|c| c.to_json()).collect::<Vec<_>>(),
            "trace_ids": self.trace_ids.iter().map(|t| format!("{t:#x}")).collect::<Vec<_>>(),
            "metrics_delta": self.metrics_delta.to_json(),
        })
    }

    /// Terminal rendering for `dlhub bundle <id>`.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "bundle {}  [{}]  fingerprint {:#018x}\n  {}\n",
            self.id,
            self.trigger.kind(),
            self.fingerprint(),
            self.trigger.summary()
        ));
        out.push_str("\n== contention (ranked) ==\n");
        out.push_str(&render_contention(&self.contention));
        out.push_str("\n== profile (collapsed stacks) ==\n");
        match &self.profile {
            Some(report) => {
                out.push_str(&format!(
                    "{} samples @ {} Hz\n",
                    report.total_samples, report.hz
                ));
                out.push_str(&report.render_collapsed());
            }
            None => out.push_str("(profiler disabled)\n"),
        }
        out.push_str("\n== metrics delta since previous freeze ==\n");
        out.push_str(&self.metrics_delta.render_dashboard());
        out.push_str("\n== recent traces ==\n");
        out.push_str(&self.traces);
        out
    }
}

/// One remembered trigger line.
#[derive(Debug, Clone)]
pub struct RecorderEvent {
    /// Freeze time (ns since the process trace epoch).
    pub at_ns: u64,
    /// Bundle the trigger froze.
    pub bundle_id: u64,
    /// Trigger kind tag.
    pub kind: &'static str,
    /// Trigger summary line.
    pub summary: String,
}

struct RecorderInner {
    sources: RecorderSources,
    capacity: usize,
    seq: AtomicU64,
    /// One lock covers ring + baseline: freezes serialise, so bundle
    /// deltas partition metric history exactly.
    frozen: Mutex<FrozenState>,
    events: Mutex<VecDeque<RecorderEvent>>,
}

struct FrozenState {
    bundles: VecDeque<Arc<Bundle>>,
    baseline: MetricsSnapshot,
}

impl RecorderInner {
    fn freeze(&self, trigger: BundleTrigger) -> Arc<Bundle> {
        let at_ns = now_ns();
        let id = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let profile = self.sources.profiler.report();
        let contention = self.sources.contention.snapshot();
        let export = self.sources.tracer.export(None);
        let mut latest: Vec<(u64, u64)> = Vec::new(); // (trace, max end_ns)
        for span in &export.spans {
            if span.trace == 0 {
                continue;
            }
            match latest.iter_mut().find(|(t, _)| *t == span.trace) {
                Some((_, end)) => *end = (*end).max(span.end_ns),
                None => latest.push((span.trace, span.end_ns)),
            }
        }
        latest.sort_by_key(|&(_, end)| std::cmp::Reverse(end));
        latest.truncate(BUNDLE_TRACES);
        let trace_ids: Vec<u64> = latest.iter().map(|(t, _)| *t).collect();
        let traces = TraceExport {
            spans: export
                .spans
                .iter()
                .filter(|s| trace_ids.contains(&s.trace))
                .cloned()
                .collect(),
        }
        .render_text();

        let mut frozen = self.frozen.lock();
        let current = self.sources.metrics.snapshot();
        let metrics_delta = current.delta_since(&frozen.baseline);
        frozen.baseline = current;
        let bundle = Arc::new(Bundle {
            id,
            at_ns,
            trigger,
            profile,
            contention,
            trace_ids,
            traces,
            metrics_delta,
        });
        frozen.bundles.push_back(Arc::clone(&bundle));
        while frozen.bundles.len() > self.capacity {
            frozen.bundles.pop_front();
        }
        drop(frozen);
        let mut events = self.events.lock();
        events.push_back(RecorderEvent {
            at_ns,
            bundle_id: bundle.id,
            kind: bundle.trigger.kind(),
            summary: bundle.trigger.summary(),
        });
        while events.len() > EVENT_RING {
            events.pop_front();
        }
        bundle
    }
}

/// Cloneable handle to one deployment's flight recorder. Disabled by
/// default (and statically near-free when disabled);
/// [`enable`](FlightRecorder::enable) flips every clone at once.
#[derive(Clone, Default)]
pub struct FlightRecorder {
    shared: Arc<OnceLock<Arc<RecorderInner>>>,
}

impl FlightRecorder {
    /// A disabled handle (same as `default()`).
    pub fn disabled() -> Self {
        FlightRecorder::default()
    }

    /// Arm the recorder: keep up to `capacity` bundles and snapshot
    /// `sources` on every trigger. The enable-time metrics snapshot
    /// becomes the first bundle's delta baseline. First enable wins;
    /// returns whether this call did the enabling.
    pub fn enable(&self, capacity: usize, sources: RecorderSources) -> bool {
        let mut created = false;
        self.shared.get_or_init(|| {
            created = true;
            let baseline = sources.metrics.snapshot();
            Arc::new(RecorderInner {
                sources,
                capacity: capacity.max(1),
                seq: AtomicU64::new(0),
                frozen: Mutex::new(FrozenState {
                    bundles: VecDeque::new(),
                    baseline,
                }),
                events: Mutex::new(VecDeque::new()),
            })
        });
        created
    }

    /// Whether any clone of this handle has been armed.
    pub fn enabled(&self) -> bool {
        self.shared.get().is_some()
    }

    /// Trigger: an SLO transitioned to firing (called by the CAS
    /// winner in `SloTracker::evaluate`). No-op when disabled.
    pub fn slo_firing(&self, servable: &str, objective: &str, burn_fast: f64, burn_slow: f64) {
        if let Some(inner) = self.shared.get() {
            inner.freeze(BundleTrigger::SloFiring {
                servable: servable.to_string(),
                objective: objective.to_string(),
                burn_fast,
                burn_slow,
            });
        }
    }

    /// Trigger: a task reached terminal `Failed`. No-op when disabled.
    pub fn task_failed(&self, task: &str, servable: &str, attempts: u32, last_error: &str) {
        if let Some(inner) = self.shared.get() {
            inner.freeze(BundleTrigger::TaskFailed {
                task: task.to_string(),
                servable: servable.to_string(),
                attempts,
                last_error: last_error.to_string(),
            });
        }
    }

    /// Trigger: the admission controller shed `shed` requests inside
    /// one `window_ms` storm window. No-op when disabled.
    pub fn shed_storm(&self, shed: u64, window_ms: u64) {
        if let Some(inner) = self.shared.get() {
            inner.freeze(BundleTrigger::ShedStorm { shed, window_ms });
        }
    }

    /// Retained bundles, oldest first. Empty when disabled.
    pub fn bundles(&self) -> Vec<Arc<Bundle>> {
        match self.shared.get() {
            Some(inner) => inner.frozen.lock().bundles.iter().cloned().collect(),
            None => Vec::new(),
        }
    }

    /// Look up a retained bundle by id.
    pub fn bundle(&self, id: u64) -> Option<Arc<Bundle>> {
        self.shared.get().and_then(|inner| {
            inner
                .frozen
                .lock()
                .bundles
                .iter()
                .find(|b| b.id == id)
                .cloned()
        })
    }

    /// The most recent bundle, if any.
    pub fn latest(&self) -> Option<Arc<Bundle>> {
        self.shared
            .get()
            .and_then(|inner| inner.frozen.lock().bundles.back().cloned())
    }

    /// Trigger lines remembered (bounded), oldest first — survives
    /// bundle rotation.
    pub fn events(&self) -> Vec<RecorderEvent> {
        match self.shared.get() {
            Some(inner) => inner.events.lock().iter().cloned().collect(),
            None => Vec::new(),
        }
    }

    /// Total freezes since enablement.
    pub fn frozen_total(&self) -> u64 {
        self.shared
            .get()
            .map(|inner| inner.seq.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sources() -> RecorderSources {
        RecorderSources {
            tracer: Tracer::new(),
            metrics: Registry::new(),
            contention: ContentionRegistry::new(),
            profiler: ProfilerHandle::disabled(),
        }
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let recorder = FlightRecorder::disabled();
        recorder.slo_firing("dlhub/echo", "latency", 10.0, 8.0);
        recorder.task_failed("task-1", "dlhub/echo", 4, "boom");
        assert!(!recorder.enabled());
        assert!(recorder.bundles().is_empty());
        assert!(recorder.events().is_empty());
        assert_eq!(recorder.frozen_total(), 0);
    }

    #[test]
    fn freeze_captures_delta_contention_and_traces() {
        let src = sources();
        src.metrics.counter("requests_total").add(5);
        let recorder = FlightRecorder::disabled();
        recorder.enable(4, src.clone());
        // Activity after enable: only this lands in the first delta.
        src.metrics.counter("requests_total").add(3);
        src.contention
            .site("memo.shard_lock")
            .record(Duration::from_micros(50));
        let span = src.tracer.start_root("request");
        src.tracer.finish(span);

        recorder.slo_firing("dlhub/echo", "latency", 12.0, 6.5);
        let bundle = recorder.latest().expect("bundle frozen");
        assert_eq!(bundle.id, 1);
        assert_eq!(bundle.trigger.kind(), "slo_firing");
        let delta = bundle
            .metrics_delta
            .counters
            .iter()
            .find(|(n, _)| n == "requests_total")
            .map(|(_, v)| *v);
        assert_eq!(delta, Some(3), "delta must start at the enable baseline");
        assert_eq!(bundle.contention.len(), 1);
        assert_eq!(bundle.contention[0].waits, 1);
        assert_eq!(bundle.trace_ids.len(), 1);
        assert!(bundle.traces.contains("request"), "{}", bundle.traces);
        assert!(bundle.profile.is_none());
        let text = bundle.render_text();
        assert!(text.contains("slo dlhub/echo latency firing"), "{text}");
        assert!(text.contains("memo.shard_lock"), "{text}");

        // The next freeze's delta starts where this one ended.
        src.metrics.counter("requests_total").add(2);
        recorder.task_failed("task-9", "dlhub/echo", 4, "exploded");
        let second = recorder.latest().unwrap();
        assert_eq!(second.id, 2);
        let delta2 = second
            .metrics_delta
            .counters
            .iter()
            .find(|(n, _)| n == "requests_total")
            .map(|(_, v)| *v);
        assert_eq!(delta2, Some(2));
        assert_eq!(recorder.bundles().len(), 2);
        assert_eq!(recorder.frozen_total(), 2);
    }

    #[test]
    fn ring_is_bounded_but_events_remember() {
        let recorder = FlightRecorder::disabled();
        recorder.enable(2, sources());
        for i in 0..5 {
            recorder.task_failed(&format!("task-{i}"), "dlhub/x", 1, "err");
        }
        let bundles = recorder.bundles();
        assert_eq!(bundles.len(), 2);
        assert_eq!(bundles[0].id, 4);
        assert_eq!(bundles[1].id, 5);
        assert!(recorder.bundle(1).is_none());
        assert!(recorder.bundle(5).is_some());
        assert_eq!(recorder.events().len(), 5);
        assert_eq!(recorder.frozen_total(), 5);
    }

    #[test]
    fn fingerprints_are_deterministic_across_runs_and_ignore_timing() {
        let make = |burn: f64| {
            let recorder = FlightRecorder::disabled();
            recorder.enable(2, sources());
            recorder.slo_firing("dlhub/inception", "latency", burn, burn / 2.0);
            recorder.latest().unwrap().fingerprint()
        };
        // Same failure, different timing-dependent burn rates.
        assert_eq!(make(10.0), make(97.3));
        let other = {
            let recorder = FlightRecorder::disabled();
            recorder.enable(2, sources());
            recorder.slo_firing("dlhub/inception", "availability", 10.0, 5.0);
            recorder.latest().unwrap().fingerprint()
        };
        assert_ne!(make(10.0), other);
    }

    #[test]
    fn shed_storm_freezes_a_bundle() {
        let recorder = FlightRecorder::disabled();
        recorder.shed_storm(100, 1_000); // disabled: inert
        recorder.enable(2, sources());
        recorder.shed_storm(42, 1_000);
        let bundle = recorder.latest().expect("bundle frozen");
        assert_eq!(bundle.trigger.kind(), "shed_storm");
        assert!(bundle.trigger.summary().contains("42 requests shed"));
        assert_eq!(bundle.trigger.deterministic_key(), "shed_storm:42:1000");
    }

    #[test]
    fn bundle_json_is_well_formed() {
        let recorder = FlightRecorder::disabled();
        recorder.enable(2, sources());
        recorder.task_failed("t", "dlhub/echo", 4, "synthetic");
        let j = serde_json::to_string(&recorder.latest().unwrap().to_json()).unwrap();
        assert!(j.contains("\"kind\":\"task_failed\""), "{j}");
        assert!(j.contains("\"fingerprint\""), "{j}");
        assert!(j.contains("\"metrics_delta\""), "{j}");
    }
}
