//! Lock-free single-producer / single-consumer span ring.
//!
//! Each worker thread owns one `SpanRing` per tracer and is its only
//! producer; the collector (which serialises drains behind the
//! tracer's ring-registry lock) is the only concurrent consumer. When
//! the ring is full the producer drops the span and bumps a counter
//! instead of blocking — tracing must never stall the request path.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::trace::SpanRecord;

/// Slots per ring. Power of two so masking replaces modulo.
pub(crate) const RING_CAPACITY: usize = 256;

struct Slot(UnsafeCell<MaybeUninit<SpanRecord>>);

/// Fixed-capacity SPSC ring buffer of finished spans.
///
/// `head` counts writes and `tail` counts reads; both grow
/// monotonically (wrapping) and are masked into the slot array, so
/// `head - tail` is the live length. The producer writes a slot and
/// then publishes it with a `Release` store of `head`; the consumer
/// `Acquire`-loads `head` before reading, and publishes freed slots
/// with a `Release` store of `tail` which the producer `Acquire`-loads
/// before reusing them.
pub(crate) struct SpanRing {
    slots: Box<[Slot]>,
    head: AtomicUsize,
    tail: AtomicUsize,
    dropped: AtomicU64,
}

// Safety: slot accesses are coordinated through `head`/`tail`. The
// producer only writes slots in `[head, tail + capacity)` and the
// consumer only reads slots in `[tail, head)`; the Release/Acquire
// pairs on the indices order the slot data accesses between the two
// threads, and the external contract (one owning producer thread, one
// consumer at a time under the collector lock) rules out same-role
// races.
unsafe impl Send for SpanRing {}
unsafe impl Sync for SpanRing {}

impl SpanRing {
    pub(crate) fn new() -> Self {
        let slots = (0..RING_CAPACITY)
            .map(|_| Slot(UnsafeCell::new(MaybeUninit::uninit())))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SpanRing {
            slots,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Producer side: push a finished span, dropping it (and counting
    /// the drop) when the ring is full. Must only be called from the
    /// thread that owns this ring.
    pub(crate) fn push(&self, record: SpanRecord) {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head.wrapping_sub(tail) >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let slot = &self.slots[head & (self.slots.len() - 1)];
        // Safety: `[tail, head)` is owned by the consumer, so a
        // not-full ring guarantees this slot is dead storage that only
        // the producer may touch.
        unsafe { (*slot.0.get()).write(record) };
        self.head.store(head.wrapping_add(1), Ordering::Release);
    }

    /// Consumer side: move every published span into `out`. Callers
    /// must serialise drains (the tracer holds its ring-registry lock
    /// across this call).
    pub(crate) fn drain_into(&self, out: &mut Vec<SpanRecord>) {
        let mut tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        while tail != head {
            let slot = &self.slots[tail & (self.slots.len() - 1)];
            // Safety: the Acquire load of `head` ordered this read
            // after the producer's write, and the slot is read exactly
            // once before `tail` passes it.
            out.push(unsafe { (*slot.0.get()).assume_init_read() });
            tail = tail.wrapping_add(1);
            self.tail.store(tail, Ordering::Release);
        }
    }

    /// Spans discarded because the ring was full.
    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl Drop for SpanRing {
    fn drop(&mut self) {
        // Release any spans still in flight so their heap attributes
        // are freed.
        let mut sink = Vec::new();
        self.drain_into(&mut sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn rec(span: u64) -> SpanRecord {
        SpanRecord {
            trace: 1,
            span,
            parent: 0,
            name: "test",
            start_ns: span,
            end_ns: span + 1,
            attrs: vec![("k", format!("v{span}"))],
        }
    }

    #[test]
    fn push_then_drain_roundtrips_in_order() {
        let ring = SpanRing::new();
        for i in 0..10 {
            ring.push(rec(i));
        }
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        assert_eq!(out.len(), 10);
        assert!(out.iter().enumerate().all(|(i, r)| r.span == i as u64));
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn overflow_drops_newest_and_counts() {
        let ring = SpanRing::new();
        for i in 0..(RING_CAPACITY as u64 + 7) {
            ring.push(rec(i));
        }
        assert_eq!(ring.dropped(), 7);
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        assert_eq!(out.len(), RING_CAPACITY);
        // The oldest records survive; the overflow was discarded.
        assert_eq!(out[0].span, 0);
    }

    #[test]
    fn concurrent_producer_consumer_loses_nothing_when_not_full() {
        let ring = Arc::new(SpanRing::new());
        let total = 20_000u64;
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut sent = 0;
                let mut i = 0;
                while sent < total {
                    // Retry on full: this test wants lossless delivery,
                    // so treat a dropped push as backpressure.
                    let before = ring.dropped();
                    ring.push(rec(i));
                    if ring.dropped() == before {
                        sent += 1;
                        i += 1;
                    } else {
                        std::thread::yield_now();
                        i = sent; // resend the dropped record
                    }
                }
            })
        };
        let mut seen = Vec::new();
        while seen.len() < total as usize {
            ring.drain_into(&mut seen);
        }
        producer.join().unwrap();
        assert_eq!(seen.len(), total as usize);
        assert!(seen.iter().enumerate().all(|(i, r)| r.span == i as u64));
        assert!(seen
            .iter()
            .enumerate()
            .all(|(i, r)| r.attrs[0].1 == format!("v{i}")));
    }
}
