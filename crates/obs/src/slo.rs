//! Per-servable service-level objectives with multi-window burn-rate
//! alerting.
//!
//! Each servable can declare a latency objective ("99% of requests
//! under 250ms") and an availability objective ("99.9% of requests
//! succeed"). Observations land in a ring of fixed time slices; burn
//! rate — the fraction of the error budget consumed per unit time,
//! `bad_fraction / (1 - objective)` — is evaluated over a *fast* and a
//! *slow* window, and an alert fires only when **both** exceed the
//! burn threshold (the multi-window multi-burn-rate discipline: the
//! slow window keeps one bad blip from paging, the fast window clears
//! the alert quickly once the bleeding stops). Alert transitions are
//! emitted as zero-duration obs events named `slo_alert` and counted
//! in the shared metrics registry.
//!
//! The record path is lock-free: one slice-epoch CAS plus a handful of
//! relaxed atomics per observation, so SLO tracking can stay enabled
//! on the serving hot path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;
use serde_json::{json, Value};

use crate::metrics::{Counter, Gauge};
use crate::recorder::FlightRecorder;
use crate::trace::{now_ns, Tracer};

/// Time slices in a tracker's ring. The slow window is divided evenly
/// across them; the fast window reads a prefix.
const SLICES: usize = 16;

/// Declarative objective for one servable, carried in
/// `ServingConfig::slos`.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Servable id the objective applies to (e.g. `dlhub/inception`).
    pub servable: String,
    /// A request slower than this is "bad" for the latency objective.
    pub latency_threshold: Duration,
    /// Target fraction of requests under the threshold (e.g. `0.99`).
    pub latency_objective: f64,
    /// Target fraction of requests that succeed (e.g. `0.999`).
    pub availability_objective: f64,
    /// Short window: clears fast once the burn stops.
    pub fast_window: Duration,
    /// Long window: keeps one blip from firing. Also sets the ring's
    /// total span.
    pub slow_window: Duration,
    /// Burn rate (budget consumed per unit time) above which, in both
    /// windows at once, the alert fires.
    pub burn_threshold: f64,
}

impl SloSpec {
    /// An objective with production-shaped defaults: p99 latency under
    /// `threshold`, 99.9% availability, 5m/1h windows, burn 2.0.
    pub fn new(servable: impl Into<String>, threshold: Duration) -> Self {
        SloSpec {
            servable: servable.into(),
            latency_threshold: threshold,
            latency_objective: 0.99,
            availability_objective: 0.999,
            fast_window: Duration::from_secs(300),
            slow_window: Duration::from_secs(3600),
            burn_threshold: 2.0,
        }
    }

    /// Override both evaluation windows (tests shrink these so alerts
    /// fire within a test budget).
    pub fn windows(mut self, fast: Duration, slow: Duration) -> Self {
        self.fast_window = fast;
        self.slow_window = slow.max(fast);
        self
    }

    /// Override the latency objective fraction.
    pub fn latency_objective(mut self, objective: f64) -> Self {
        self.latency_objective = objective.clamp(0.0, 0.999_999);
        self
    }

    /// Override the availability objective fraction.
    pub fn availability_objective(mut self, objective: f64) -> Self {
        self.availability_objective = objective.clamp(0.0, 0.999_999);
        self
    }

    /// Override the burn-rate threshold.
    pub fn burn_threshold(mut self, threshold: f64) -> Self {
        self.burn_threshold = threshold.max(0.0);
        self
    }
}

/// One time slice of observations. `epoch` is the absolute slice
/// index the counters belong to; a writer landing in a recycled slot
/// CASes the epoch forward and zeroes the counters first.
#[derive(Default)]
struct Slice {
    epoch: AtomicU64,
    total: AtomicU64,
    lat_bad: AtomicU64,
    err: AtomicU64,
}

/// Live burn-rate tracker for one servable.
pub struct SloTracker {
    spec: SloSpec,
    slice_ns: u64,
    slices: [Slice; SLICES],
    firing: AtomicBool,
    alerts_fired: Counter,
    tracer: Tracer,
    fired_total: Arc<Counter>,
    active: Arc<Gauge>,
    recorder: FlightRecorder,
}

/// Burn rates over the two windows for one objective.
#[derive(Debug, Clone, Copy, Default)]
struct Burn {
    fast: f64,
    slow: f64,
    observed: u64,
}

impl SloTracker {
    fn new(
        spec: SloSpec,
        tracer: Tracer,
        fired_total: Arc<Counter>,
        active: Arc<Gauge>,
        recorder: FlightRecorder,
    ) -> Self {
        let slice_ns = (spec.slow_window.as_nanos() as u64 / SLICES as u64).max(1);
        SloTracker {
            spec,
            slice_ns,
            slices: std::array::from_fn(|_| Slice::default()),
            firing: AtomicBool::new(false),
            alerts_fired: Counter::new(),
            tracer,
            fired_total,
            active,
            recorder,
        }
    }

    /// Record one request outcome and re-evaluate the alert state.
    pub fn observe(&self, latency: Duration, ok: bool) {
        let at = now_ns();
        let epoch = at / self.slice_ns;
        let slice = &self.slices[epoch as usize % SLICES];
        // First writer into a recycled slot resets it for the new
        // epoch; losers of the race see the updated epoch and record
        // normally. A slightly torn reset only miscounts one slice.
        let seen = slice.epoch.load(Ordering::Acquire);
        if seen != epoch
            && slice
                .epoch
                .compare_exchange(seen, epoch, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        {
            slice.total.store(0, Ordering::Relaxed);
            slice.lat_bad.store(0, Ordering::Relaxed);
            slice.err.store(0, Ordering::Relaxed);
        }
        slice.total.fetch_add(1, Ordering::Relaxed);
        if latency > self.spec.latency_threshold {
            slice.lat_bad.fetch_add(1, Ordering::Relaxed);
        }
        if !ok {
            slice.err.fetch_add(1, Ordering::Relaxed);
        }
        self.evaluate(at);
    }

    /// Sum `(total, bad)` over slices whose epoch falls within the
    /// last `window_slices` epochs ending at `now_epoch`.
    fn window(
        &self,
        now_epoch: u64,
        window_slices: u64,
        bad: impl Fn(&Slice) -> u64,
    ) -> (u64, u64) {
        let oldest = now_epoch.saturating_sub(window_slices.saturating_sub(1));
        let mut total = 0;
        let mut bad_sum = 0;
        for slice in &self.slices {
            let epoch = slice.epoch.load(Ordering::Acquire);
            if epoch >= oldest && epoch <= now_epoch {
                total += slice.total.load(Ordering::Relaxed);
                bad_sum += bad(slice);
            }
        }
        (total, bad_sum)
    }

    fn burn(&self, at: u64, objective: f64, bad: impl Fn(&Slice) -> u64 + Copy) -> Burn {
        let now_epoch = at / self.slice_ns;
        let fast_slices = (self.spec.fast_window.as_nanos() as u64)
            .div_ceil(self.slice_ns)
            .clamp(1, SLICES as u64);
        let budget = (1.0 - objective).max(f64::EPSILON);
        let rate = |(total, bad_sum): (u64, u64)| {
            if total == 0 {
                0.0
            } else {
                (bad_sum as f64 / total as f64) / budget
            }
        };
        let slow = self.window(now_epoch, SLICES as u64, bad);
        Burn {
            fast: rate(self.window(now_epoch, fast_slices, bad)),
            slow: rate(slow),
            observed: slow.0,
        }
    }

    fn evaluate(&self, at: u64) {
        let latency = self.burn(at, self.spec.latency_objective, |s| {
            s.lat_bad.load(Ordering::Relaxed)
        });
        let avail = self.burn(at, self.spec.availability_objective, |s| {
            s.err.load(Ordering::Relaxed)
        });
        let over =
            |b: Burn| b.fast >= self.spec.burn_threshold && b.slow >= self.spec.burn_threshold;
        let should_fire = over(latency) || over(avail);
        let was = self.firing.load(Ordering::Acquire);
        if should_fire == was {
            return;
        }
        // One thread wins the transition and emits the event.
        if self
            .firing
            .compare_exchange(was, should_fire, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return;
        }
        if should_fire {
            self.alerts_fired.inc();
            self.fired_total.inc();
            self.active.add(1);
        } else {
            self.active.add(-1);
        }
        let objective = if over(latency) {
            "latency"
        } else {
            "availability"
        };
        let burn_fast = latency.fast.max(avail.fast);
        let burn_slow = latency.slow.max(avail.slow);
        if should_fire {
            // The CAS winner freezes the evidence: the recorder bundles
            // the profile slice, contention table, recent traces and
            // metrics delta at the moment the alert transitioned.
            self.recorder
                .slo_firing(&self.spec.servable, objective, burn_fast, burn_slow);
        }
        self.tracer.event(
            None,
            "slo_alert",
            vec![
                ("servable", self.spec.servable.clone()),
                (
                    "state",
                    if should_fire { "firing" } else { "resolved" }.to_string(),
                ),
                ("objective", objective.to_string()),
                ("burn_fast", format!("{burn_fast:.3}")),
                ("burn_slow", format!("{burn_slow:.3}")),
            ],
        );
    }

    /// Frozen view of the tracker, re-evaluating alert state first so
    /// a snapshot taken after traffic stops still reflects it.
    pub fn snapshot(&self) -> SloSnapshot {
        let at = now_ns();
        self.evaluate(at);
        let latency = self.burn(at, self.spec.latency_objective, |s| {
            s.lat_bad.load(Ordering::Relaxed)
        });
        let avail = self.burn(at, self.spec.availability_objective, |s| {
            s.err.load(Ordering::Relaxed)
        });
        SloSnapshot {
            servable: self.spec.servable.clone(),
            latency_threshold_ns: self.spec.latency_threshold.as_nanos() as u64,
            latency_objective: self.spec.latency_objective,
            availability_objective: self.spec.availability_objective,
            burn_threshold: self.spec.burn_threshold,
            latency_burn_fast: latency.fast,
            latency_burn_slow: latency.slow,
            availability_burn_fast: avail.fast,
            availability_burn_slow: avail.slow,
            observed: latency.observed,
            firing: self.firing.load(Ordering::Acquire),
            alerts_fired: self.alerts_fired.get(),
        }
    }
}

/// Frozen view of one servable's SLO state.
#[derive(Debug, Clone, Default)]
pub struct SloSnapshot {
    /// Servable under objective.
    pub servable: String,
    /// Latency threshold, nanoseconds.
    pub latency_threshold_ns: u64,
    /// Latency objective fraction.
    pub latency_objective: f64,
    /// Availability objective fraction.
    pub availability_objective: f64,
    /// Burn threshold both windows must exceed to fire.
    pub burn_threshold: f64,
    /// Latency burn rate over the fast window.
    pub latency_burn_fast: f64,
    /// Latency burn rate over the slow window.
    pub latency_burn_slow: f64,
    /// Availability burn rate over the fast window.
    pub availability_burn_fast: f64,
    /// Availability burn rate over the slow window.
    pub availability_burn_slow: f64,
    /// Requests observed inside the slow window.
    pub observed: u64,
    /// Whether the alert is currently firing.
    pub firing: bool,
    /// Alert activations since registration.
    pub alerts_fired: u64,
}

impl SloSnapshot {
    /// JSON form embedded in snapshot exports.
    pub fn to_json(&self) -> Value {
        json!({
            "servable": self.servable,
            "latency_threshold_ns": self.latency_threshold_ns,
            "latency_objective": self.latency_objective,
            "availability_objective": self.availability_objective,
            "burn_threshold": self.burn_threshold,
            "latency_burn_fast": self.latency_burn_fast,
            "latency_burn_slow": self.latency_burn_slow,
            "availability_burn_fast": self.availability_burn_fast,
            "availability_burn_slow": self.availability_burn_slow,
            "observed": self.observed,
            "firing": self.firing,
            "alerts_fired": self.alerts_fired,
        })
    }

    /// Terminal rendering for `dlhub slo`.
    pub fn render_text(&self) -> String {
        format!(
            "slo {}\n  latency      < {:.3}ms for {:.2}% — burn fast {:.2} / slow {:.2}\n  availability {:.3}% — burn fast {:.2} / slow {:.2}\n  state {}  alerts fired {}  observed {}\n",
            self.servable,
            self.latency_threshold_ns as f64 / 1e6,
            self.latency_objective * 100.0,
            self.latency_burn_fast,
            self.latency_burn_slow,
            self.availability_objective * 100.0,
            self.availability_burn_fast,
            self.availability_burn_slow,
            if self.firing { "FIRING" } else { "ok" },
            self.alerts_fired,
            self.observed,
        )
    }
}

/// Registry of SLO trackers keyed by servable. Cheap to clone; clones
/// share state. Observing a servable without an objective is a single
/// read-locked map miss, so the hot path stays cheap when no SLOs are
/// configured.
#[derive(Clone, Default)]
pub struct SloRegistry {
    inner: Arc<RwLock<BTreeMap<String, Arc<SloTracker>>>>,
}

impl SloRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        SloRegistry::default()
    }

    /// Install (or replace) the tracker for `spec.servable`, wiring
    /// alert transitions into `tracer` and the shared counter/gauge.
    pub fn register(
        &self,
        spec: SloSpec,
        tracer: Tracer,
        fired_total: Arc<Counter>,
        active: Arc<Gauge>,
    ) -> Arc<SloTracker> {
        self.register_with_recorder(
            spec,
            tracer,
            fired_total,
            active,
            FlightRecorder::disabled(),
        )
    }

    /// Like [`register`](SloRegistry::register), additionally wiring
    /// firing transitions into a flight recorder: the CAS winner of a
    /// `firing` transition freezes a diagnostic bundle.
    pub fn register_with_recorder(
        &self,
        spec: SloSpec,
        tracer: Tracer,
        fired_total: Arc<Counter>,
        active: Arc<Gauge>,
        recorder: FlightRecorder,
    ) -> Arc<SloTracker> {
        let tracker = Arc::new(SloTracker::new(
            spec.clone(),
            tracer,
            fired_total,
            active,
            recorder,
        ));
        self.inner
            .write()
            .insert(spec.servable, Arc::clone(&tracker));
        tracker
    }

    /// Look up a tracker.
    pub fn get(&self, servable: &str) -> Option<Arc<SloTracker>> {
        self.inner.read().get(servable).cloned()
    }

    /// Record one request outcome against the servable's objective, if
    /// one is registered.
    pub fn observe(&self, servable: &str, latency: Duration, ok: bool) {
        if let Some(tracker) = self.inner.read().get(servable) {
            tracker.observe(latency, ok);
        }
    }

    /// Snapshot every registered tracker, servable-sorted.
    pub fn snapshot(&self) -> Vec<SloSnapshot> {
        self.inner.read().values().map(|t| t.snapshot()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(spec: SloSpec) -> (SloTracker, Tracer) {
        let tracer = Tracer::new();
        let t = SloTracker::new(
            spec,
            tracer.clone(),
            Arc::new(Counter::new()),
            Arc::new(Gauge::new()),
            FlightRecorder::disabled(),
        );
        (t, tracer)
    }

    fn tight_spec() -> SloSpec {
        SloSpec::new("dlhub/echo", Duration::from_millis(1))
            .latency_objective(0.9)
            .windows(Duration::from_millis(200), Duration::from_secs(2))
            .burn_threshold(2.0)
    }

    #[test]
    fn clean_traffic_never_fires() {
        let (t, tracer) = tracker(tight_spec());
        for _ in 0..200 {
            t.observe(Duration::from_micros(50), true);
        }
        let snap = t.snapshot();
        assert!(!snap.firing, "{snap:?}");
        assert_eq!(snap.alerts_fired, 0);
        assert_eq!(snap.observed, 200);
        assert!(snap.latency_burn_slow < 0.01);
        assert!(tracer.export(None).named("slo_alert").is_empty());
    }

    #[test]
    fn sustained_slow_traffic_fires_once() {
        let (t, tracer) = tracker(tight_spec());
        // Every request breaches the 1ms threshold: bad fraction 1.0,
        // budget 0.1 → burn 10 in both windows.
        for _ in 0..50 {
            t.observe(Duration::from_millis(30), true);
        }
        let snap = t.snapshot();
        assert!(snap.firing, "{snap:?}");
        assert_eq!(snap.alerts_fired, 1);
        assert!(snap.latency_burn_fast >= 2.0);
        let events = tracer.export(None);
        let alerts = events.named("slo_alert");
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].attr("state"), Some("firing"));
        assert_eq!(alerts[0].attr("objective"), Some("latency"));
        assert_eq!(alerts[0].attr("servable"), Some("dlhub/echo"));
        // Re-evaluating while still burning does not re-fire.
        t.observe(Duration::from_millis(30), true);
        assert_eq!(t.snapshot().alerts_fired, 1);
    }

    #[test]
    fn error_traffic_fires_the_availability_objective() {
        let spec = SloSpec::new("dlhub/echo", Duration::from_secs(10))
            .availability_objective(0.9)
            .windows(Duration::from_millis(200), Duration::from_secs(2));
        let (t, tracer) = tracker(spec);
        for _ in 0..50 {
            t.observe(Duration::from_micros(10), false);
        }
        assert!(t.snapshot().firing);
        let export = tracer.export(None);
        assert_eq!(
            export.named("slo_alert")[0].attr("objective"),
            Some("availability")
        );
    }

    #[test]
    fn registry_observe_is_a_noop_without_an_objective() {
        let reg = SloRegistry::new();
        reg.observe("dlhub/unknown", Duration::from_secs(5), false);
        assert!(reg.snapshot().is_empty());
        let tracer = Tracer::new();
        reg.register(
            tight_spec(),
            tracer,
            Arc::new(Counter::new()),
            Arc::new(Gauge::new()),
        );
        reg.observe("dlhub/echo", Duration::from_micros(10), true);
        let snaps = reg.snapshot();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].observed, 1);
        assert!(!snaps[0].render_text().is_empty());
        assert!(snaps[0].to_json().get("burn_threshold").is_some());
    }
}
