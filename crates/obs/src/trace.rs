//! Request tracing: span identity, per-thread recording, collection
//! and export.
//!
//! A [`Tracer`] mints `TraceId`/`SpanId` pairs (plain `u64`s, unique
//! per tracer) and records finished [`SpanRecord`]s into a lock-free
//! per-thread [ring](crate::ring) so the request hot path never takes
//! a lock to trace. A collector pass ([`Tracer::drain`]) moves the
//! rings' contents into a bounded in-memory store, from which
//! [`Tracer::export`] produces a [`TraceExport`] for rendering.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use serde_json::{json, Value};

use crate::ring::SpanRing;

/// Spans retained in the collector store before the oldest are
/// discarded.
const STORE_CAPACITY: usize = 65_536;

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide tracing epoch (the first call to
/// any obs clock function). All span timestamps share this clock, so
/// spans recorded on different threads are directly comparable.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Trace identity carried across tiers inside task envelopes.
///
/// `trace` names the end-to-end request tree; `span` is the sender's
/// span, which the receiving tier uses as the parent of its own span.
/// Serialises as a plain two-field object so it can ride inside
/// `TaskRequest` without schema changes breaking old readers (missing
/// field deserialises to `None` on `Option<TraceContext>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceContext {
    /// Identifier of the whole request tree.
    pub trace: u64,
    /// Span id of the sender, i.e. the parent for the next tier.
    pub span: u64,
}

/// A finished span as stored by the collector.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Trace this span belongs to (0 = untraced event).
    pub trace: u64,
    /// Unique id of this span within its tracer.
    pub span: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Static span name, e.g. `"request"`, `"invocation"`, `"inference"`.
    pub name: &'static str,
    /// Start, nanoseconds since the tracer epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the tracer epoch.
    pub end_ns: u64,
    /// Free-form attributes (`servable`, `replica`, `cache_hit`, ...).
    pub attrs: Vec<(&'static str, String)>,
}

impl SpanRecord {
    /// Wall-clock duration covered by the span.
    pub fn duration(&self) -> Duration {
        Duration::from_nanos(self.end_ns.saturating_sub(self.start_ns))
    }

    /// Look up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_str())
    }

    /// JSON form used by trace exports.
    pub fn to_json(&self) -> Value {
        let attrs: Vec<Value> = self
            .attrs
            .iter()
            .map(|(k, v)| json!([(*k).to_string(), v.clone()]))
            .collect();
        json!({
            "trace": self.trace,
            "span": self.span,
            "parent": self.parent,
            "name": self.name.to_string(),
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "attrs": Value::Array(attrs),
        })
    }
}

/// An open span. Created by [`Tracer::start_root`] /
/// [`Tracer::start_child`], finished (and recorded) by
/// [`Tracer::finish`]. The handle is plain data and may be moved
/// across threads; the finishing thread's ring receives the record.
#[derive(Debug)]
pub struct SpanHandle {
    trace: u64,
    span: u64,
    parent: u64,
    name: &'static str,
    start_ns: u64,
    attrs: Vec<(&'static str, String)>,
}

impl SpanHandle {
    /// The context to propagate to the next tier: child spans started
    /// from this context become children of this span.
    pub fn ctx(&self) -> TraceContext {
        TraceContext {
            trace: self.trace,
            span: self.span,
        }
    }

    /// Trace id of this span.
    pub fn trace(&self) -> u64 {
        self.trace
    }

    /// Attach an attribute.
    pub fn attr(&mut self, key: &'static str, value: impl Into<String>) {
        self.attrs.push((key, value.into()));
    }
}

struct TracerInner {
    /// Distinguishes tracers inside the per-thread ring map.
    id: u64,
    enabled: AtomicBool,
    next_id: AtomicU64,
    /// Every ring ever handed to a thread; drains iterate this. The
    /// lock also serialises consumers, upholding the rings' SPSC
    /// contract.
    rings: Mutex<Vec<Arc<SpanRing>>>,
    store: Mutex<VecDeque<SpanRecord>>,
    store_dropped: AtomicU64,
}

/// (tracer id, liveness probe, ring) triple for one tracer this thread
/// has recorded into.
type LocalRing = (u64, Weak<TracerInner>, Arc<SpanRing>);

thread_local! {
    /// One [`LocalRing`] per tracer this thread has recorded into.
    /// Dead tracers are pruned on the next ring allocation.
    static LOCAL_RINGS: RefCell<Vec<LocalRing>> = const { RefCell::new(Vec::new()) };
}

/// Handle to a span collector. Cheap to clone; clones share state.
///
/// Each [`crate::Obs`] owns one tracer — there is deliberately no
/// process-global tracer, so tests running several hubs in one process
/// do not interleave spans.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// Create an enabled tracer with an empty store.
    pub fn new() -> Self {
        static TRACER_IDS: AtomicU64 = AtomicU64::new(1);
        Tracer {
            inner: Arc::new(TracerInner {
                id: TRACER_IDS.fetch_add(1, Ordering::Relaxed),
                enabled: AtomicBool::new(true),
                next_id: AtomicU64::new(1),
                rings: Mutex::new(Vec::new()),
                store: Mutex::new(VecDeque::new()),
                store_dropped: AtomicU64::new(0),
            }),
        }
    }

    /// Globally enable or disable span recording. Ids are still minted
    /// while disabled (callers may rely on them), but nothing is
    /// recorded.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether span recording is on.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    fn mint(&self) -> u64 {
        self.inner.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Start a new root span under a fresh trace id.
    pub fn start_root(&self, name: &'static str) -> SpanHandle {
        let trace = self.mint();
        let span = self.mint();
        SpanHandle {
            trace,
            span,
            parent: 0,
            name,
            start_ns: now_ns(),
            attrs: Vec::new(),
        }
    }

    /// Start a span as a child of a propagated context.
    pub fn start_child(&self, parent: TraceContext, name: &'static str) -> SpanHandle {
        SpanHandle {
            trace: parent.trace,
            span: self.mint(),
            parent: parent.span,
            name,
            start_ns: now_ns(),
            attrs: Vec::new(),
        }
    }

    /// Close a span at the current instant and record it. Returns the
    /// span's context so callers can keep parenting after the span is
    /// gone.
    pub fn finish(&self, span: SpanHandle) -> TraceContext {
        let ctx = TraceContext {
            trace: span.trace,
            span: span.span,
        };
        self.push(SpanRecord {
            trace: span.trace,
            span: span.span,
            parent: span.parent,
            name: span.name,
            start_ns: span.start_ns,
            end_ns: now_ns(),
            attrs: span.attrs,
        });
        ctx
    }

    /// Record an instantaneous event, optionally attached to a trace.
    pub fn event(
        &self,
        parent: Option<TraceContext>,
        name: &'static str,
        attrs: Vec<(&'static str, String)>,
    ) {
        if !self.enabled() {
            return;
        }
        let at = now_ns();
        let (trace, parent_span) = match parent {
            Some(p) => (p.trace, p.span),
            None => (0, 0),
        };
        self.push(SpanRecord {
            trace,
            span: self.mint(),
            parent: parent_span,
            name,
            start_ns: at,
            end_ns: at,
            attrs,
        });
    }

    /// Record a span whose start/end were measured by the caller
    /// (e.g. end-anchored inference spans reconstructed from reported
    /// durations). `span` id 0 is replaced with a fresh id.
    pub fn record(&self, mut record: SpanRecord) {
        if record.span == 0 {
            record.span = self.mint();
        }
        self.push(record);
    }

    fn push(&self, record: SpanRecord) {
        if !self.enabled() {
            return;
        }
        LOCAL_RINGS.with(|cell| {
            let mut rings = cell.borrow_mut();
            if let Some((_, _, ring)) = rings.iter().find(|(id, _, _)| *id == self.inner.id) {
                ring.push(record);
                return;
            }
            // First span from this thread for this tracer: register a
            // fresh ring, dropping map entries for dead tracers.
            rings.retain(|(_, probe, _)| probe.strong_count() > 0);
            let ring = Arc::new(SpanRing::new());
            self.inner.rings.lock().push(Arc::clone(&ring));
            ring.push(record);
            rings.push((self.inner.id, Arc::downgrade(&self.inner), ring));
        });
    }

    /// Collector pass: move spans from every thread's ring into the
    /// bounded store. Rings whose owning thread has exited are drained
    /// one last time and released.
    pub fn drain(&self) {
        let mut drained = Vec::new();
        {
            let mut rings = self.inner.rings.lock();
            for ring in rings.iter() {
                ring.drain_into(&mut drained);
            }
            // A ring only referenced by the registry belongs to a dead
            // thread; it was just drained, so let it go.
            rings.retain(|ring| Arc::strong_count(ring) > 1);
        }
        if drained.is_empty() {
            return;
        }
        drained.sort_by_key(|r| r.start_ns);
        let mut store = self.inner.store.lock();
        for record in drained {
            if store.len() == STORE_CAPACITY {
                store.pop_front();
                self.inner.store_dropped.fetch_add(1, Ordering::Relaxed);
            }
            store.push_back(record);
        }
    }

    /// Spans lost to ring overflow or store eviction so far.
    pub fn dropped(&self) -> u64 {
        let rings: u64 = self.inner.rings.lock().iter().map(|r| r.dropped()).sum();
        rings + self.inner.store_dropped.load(Ordering::Relaxed)
    }

    /// Drain and export collected spans, optionally restricted to one
    /// trace id. Spans are ordered by start time.
    pub fn export(&self, trace: Option<u64>) -> TraceExport {
        self.drain();
        let store = self.inner.store.lock();
        let spans = store
            .iter()
            .filter(|s| trace.is_none_or(|t| s.trace == t))
            .cloned()
            .collect();
        TraceExport { spans }
    }

    /// Discard every collected span (does not reset id minting).
    pub fn clear(&self) {
        self.drain();
        self.inner.store.lock().clear();
    }
}

/// A set of collected spans ready for rendering.
#[derive(Debug, Clone)]
pub struct TraceExport {
    /// Spans ordered by start time.
    pub spans: Vec<SpanRecord>,
}

impl TraceExport {
    /// Distinct trace ids present, in first-seen order (untraced
    /// events under id 0 are skipped).
    pub fn trace_ids(&self) -> Vec<u64> {
        let mut ids = Vec::new();
        for span in &self.spans {
            if span.trace != 0 && !ids.contains(&span.trace) {
                ids.push(span.trace);
            }
        }
        ids
    }

    /// Spans with the given name.
    pub fn named(&self, name: &str) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.name == name).collect()
    }

    /// Direct children of the given span id.
    pub fn children_of(&self, span: u64) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.parent == span).collect()
    }

    /// JSON dump: `{"spans": [...]}`.
    pub fn to_json(&self) -> Value {
        let spans: Vec<Value> = self.spans.iter().map(SpanRecord::to_json).collect();
        json!({ "spans": Value::Array(spans) })
    }

    /// Indented per-trace tree view for terminals.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for trace in self.trace_ids() {
            out.push_str(&format!("trace {trace:#x}\n"));
            let roots: Vec<&SpanRecord> = self
                .spans
                .iter()
                .filter(|s| s.trace == trace && self.parent_missing(s))
                .collect();
            for root in roots {
                self.render_span(root, 1, &mut out);
            }
        }
        if out.is_empty() {
            out.push_str("no spans collected\n");
        }
        out
    }

    fn parent_missing(&self, span: &SpanRecord) -> bool {
        span.parent == 0 || !self.spans.iter().any(|s| s.span == span.parent)
    }

    fn render_span(&self, span: &SpanRecord, depth: usize, out: &mut String) {
        let indent = "  ".repeat(depth);
        let micros = span.duration().as_nanos() as f64 / 1_000.0;
        let attrs = span
            .attrs
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ");
        out.push_str(&format!(
            "{indent}{name} {micros:.1}us{sep}{attrs}\n",
            name = span.name,
            sep = if attrs.is_empty() { "" } else { "  " },
        ));
        for child in self.children_of(span.span) {
            self.render_span(child, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finished_spans_show_up_in_export_with_parent_links() {
        let tracer = Tracer::new();
        let mut root = tracer.start_root("request");
        root.attr("servable", "a/b");
        let ctx = root.ctx();
        let child = tracer.start_child(ctx, "invocation");
        tracer.finish(child);
        tracer.finish(root);

        let export = tracer.export(Some(ctx.trace));
        assert_eq!(export.spans.len(), 2);
        let request = &export.named("request")[0];
        let invocation = &export.named("invocation")[0];
        assert_eq!(request.parent, 0);
        assert_eq!(invocation.parent, request.span);
        assert_eq!(invocation.trace, request.trace);
        assert_eq!(request.attr("servable"), Some("a/b"));
        assert!(request.end_ns >= invocation.end_ns);
    }

    #[test]
    fn export_filters_by_trace_id() {
        let tracer = Tracer::new();
        let a = tracer.start_root("a");
        let a_trace = a.trace();
        let b = tracer.start_root("b");
        tracer.finish(a);
        tracer.finish(b);
        let export = tracer.export(Some(a_trace));
        assert_eq!(export.spans.len(), 1);
        assert_eq!(export.spans[0].name, "a");
        assert_eq!(tracer.export(None).spans.len(), 2);
    }

    #[test]
    fn disabled_tracer_records_nothing_but_still_mints_ids() {
        let tracer = Tracer::new();
        tracer.set_enabled(false);
        let span = tracer.start_root("request");
        assert!(span.trace() > 0);
        tracer.finish(span);
        tracer.event(None, "evt", Vec::new());
        assert!(tracer.export(None).spans.is_empty());
    }

    #[test]
    fn spans_recorded_on_worker_threads_are_collected() {
        let tracer = Tracer::new();
        let root = tracer.start_root("request");
        let ctx = root.ctx();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tracer = tracer.clone();
                std::thread::spawn(move || {
                    let mut span = tracer.start_child(ctx, "inference");
                    span.attr("replica", i.to_string());
                    tracer.finish(span);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        tracer.finish(root);
        let export = tracer.export(Some(ctx.trace));
        assert_eq!(export.named("inference").len(), 4);
        assert!(export
            .named("inference")
            .iter()
            .all(|s| s.parent == ctx.span));
    }

    #[test]
    fn two_tracers_do_not_share_spans() {
        let a = Tracer::new();
        let b = Tracer::new();
        a.finish(a.start_root("only-a"));
        b.finish(b.start_root("only-b"));
        assert_eq!(a.export(None).spans.len(), 1);
        assert_eq!(a.export(None).spans[0].name, "only-a");
        assert_eq!(b.export(None).spans.len(), 1);
        assert_eq!(b.export(None).spans[0].name, "only-b");
    }

    #[test]
    fn render_text_shows_nested_spans() {
        let tracer = Tracer::new();
        let root = tracer.start_root("request");
        let child = tracer.start_child(root.ctx(), "invocation");
        tracer.finish(child);
        let trace = tracer.finish(root).trace;
        let text = tracer.export(Some(trace)).render_text();
        assert!(text.contains("request"));
        assert!(text.contains("\n    invocation"));
    }

    #[test]
    fn trace_context_roundtrips_through_json() {
        let ctx = TraceContext { trace: 7, span: 9 };
        let text = serde_json::to_string(&ctx).unwrap();
        let back: TraceContext = serde_json::from_str(&text).unwrap();
        assert_eq!(back, ctx);
    }
}
