//! Ring-buffered time-series storage for telemetry samples.
//!
//! [`SeriesStore`] keeps a short multi-resolution history for every
//! sampled instrument. Each series owns one fixed-capacity ring per
//! resolution tier (default: 120 slots at the base sampling step, 180
//! at 10×, 240 at 60× — with a 1 s base that is two minutes of
//! fine-grained points backed by four hours of coarse history). A
//! sampling pass writes the *cumulative* instrument state into the
//! current step's slot of every tier, so downsampling is nothing more
//! than coarser quantisation: a 60×-step slot is overwritten 60 times
//! and ends up holding the cumulative value at its tier boundary.
//! That keeps counter deltas rate-correct across any `[from, to]`
//! pair (no averaging artifacts) and keeps log2 histograms mergeable
//! by bucket-wise subtraction — a windowed p99 is computed from real
//! bucket counts, not from re-aggregated quantiles.
//!
//! # Memory ordering
//!
//! There is exactly one writer — the collector, serialized by
//! [`crate::collect`]'s pass lock — and any number of readers. Each
//! slot is a seqlock over plain atomics, the same protocol as the
//! profiler's `ThreadSlot`: the writer bumps `seq` to an odd value
//! with a relaxed store, publishes the payload with relaxed stores
//! behind a `Release` fence, then re-publishes `seq` even with a
//! `Release` store. Readers `Acquire`-load `seq`, skip odd values,
//! copy the payload with relaxed loads, issue an `Acquire` fence and
//! re-read `seq`: any concurrent write changes `seq`, so a torn read
//! can never validate. Neither side ever blocks the other.

use std::collections::BTreeMap;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;
use serde_json::{json, Value};

use crate::metrics::{bucket_bound, bucket_quantile_value, HISTOGRAM_BUCKETS};

/// One resolution tier: one sample slot per `step`, `capacity` slots
/// before the ring wraps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierSpec {
    /// Slot width.
    pub step: Duration,
    /// Ring capacity in slots.
    pub capacity: usize,
}

impl TierSpec {
    /// Wall-clock span the tier covers before wrapping.
    pub fn coverage(&self) -> Duration {
        self.step * self.capacity as u32
    }
}

/// Default tier ladder over a base sampling step: 120 slots at the
/// base resolution, 180 at 10×, 240 at 60×.
pub fn default_tiers(base_step: Duration) -> Vec<TierSpec> {
    vec![
        TierSpec {
            step: base_step,
            capacity: 120,
        },
        TierSpec {
            step: base_step * 10,
            capacity: 180,
        },
        TierSpec {
            step: base_step * 60,
            capacity: 240,
        },
    ]
}

/// What a series measures; fixes the slot payload interpretation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Monotonic cumulative count, queried as reset-corrected deltas.
    Counter,
    /// Instantaneous level; slots aggregate last/min/max/sum/n.
    Gauge,
    /// Log2 histogram; slots hold cumulative count/sum/buckets.
    Histogram,
}

impl SeriesKind {
    fn as_str(&self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
            SeriesKind::Histogram => "histogram",
        }
    }
}

/// One seqlock-protected sample slot. Payload meaning depends on the
/// series kind:
///
/// * counter — `a` = cumulative value at the latest sample in the step;
/// * gauge — `a` last, `b` min, `c` max, `d` sum (all f64 bits),
///   `e` = samples aggregated into the step;
/// * histogram — `a` cumulative count, `b` cumulative sum, `buckets`
///   cumulative per-bucket counts.
struct Slot {
    seq: AtomicU64,
    /// Absolute step index + 1; 0 = never written.
    step: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
    c: AtomicU64,
    d: AtomicU64,
    e: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

/// A stable copy of one slot's payload.
#[derive(Debug, Clone)]
struct SlotData {
    step: u64,
    a: u64,
    b: u64,
    c: u64,
    d: u64,
    e: u64,
    buckets: Vec<u64>,
}

/// Reader retries before giving up on a stable read of one slot.
const READ_RETRIES: usize = 8;

impl Slot {
    fn new(bucketed: bool) -> Self {
        let buckets: Box<[AtomicU64]> = if bucketed {
            (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect()
        } else {
            Box::default()
        };
        Slot {
            seq: AtomicU64::new(0),
            step: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
            c: AtomicU64::new(0),
            d: AtomicU64::new(0),
            e: AtomicU64::new(0),
            buckets,
        }
    }

    /// Writer side (collector only): publish `step`'s payload inside
    /// the seqlock write bracket. `fill` receives whether the slot was
    /// recycled for a new step (true) or updated in place (false).
    fn write(&self, step: u64, fill: impl FnOnce(&Slot, bool)) {
        let seq = self.seq.load(Ordering::Relaxed);
        self.seq.store(seq.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        let fresh = self.step.load(Ordering::Relaxed) != step.wrapping_add(1);
        if fresh {
            self.step.store(step.wrapping_add(1), Ordering::Relaxed);
        }
        fill(self, fresh);
        self.seq.store(seq.wrapping_add(2), Ordering::Release);
    }

    /// Reader side: a validated copy, or `None` when the slot is empty
    /// or the writer kept it unstable for [`READ_RETRIES`] attempts.
    fn read(&self) -> Option<SlotData> {
        for _ in 0..READ_RETRIES {
            let before = self.seq.load(Ordering::Acquire);
            if before & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let step = self.step.load(Ordering::Relaxed);
            let data = SlotData {
                step: step.wrapping_sub(1),
                a: self.a.load(Ordering::Relaxed),
                b: self.b.load(Ordering::Relaxed),
                c: self.c.load(Ordering::Relaxed),
                d: self.d.load(Ordering::Relaxed),
                e: self.e.load(Ordering::Relaxed),
                buckets: self
                    .buckets
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .collect(),
            };
            fence(Ordering::Acquire);
            if self.seq.load(Ordering::Relaxed) == before {
                return (step != 0).then_some(data);
            }
        }
        None
    }
}

/// One tier's ring of slots. Slot index is `step % capacity`, so a
/// re-sample within the same step updates in place and a wrap recycles
/// the oldest slot.
struct TierRing {
    step_ns: u64,
    slots: Vec<Slot>,
}

impl TierRing {
    fn new(spec: TierSpec, bucketed: bool) -> Self {
        let step_ns = (spec.step.as_nanos().min(u64::MAX as u128) as u64).max(1);
        TierRing {
            step_ns,
            slots: (0..spec.capacity.max(1))
                .map(|_| Slot::new(bucketed))
                .collect(),
        }
    }

    fn slot_for(&self, at_ns: u64) -> (&Slot, u64) {
        let step = at_ns / self.step_ns;
        let idx = (step % self.slots.len() as u64) as usize;
        (&self.slots[idx], step)
    }

    fn record_counter(&self, at_ns: u64, value: u64) {
        let (slot, step) = self.slot_for(at_ns);
        slot.write(step, |s, _fresh| {
            s.a.store(value, Ordering::Relaxed);
        });
    }

    fn record_gauge(&self, at_ns: u64, value: f64) {
        let (slot, step) = self.slot_for(at_ns);
        slot.write(step, |s, fresh| {
            let bits = value.to_bits();
            if fresh {
                s.a.store(bits, Ordering::Relaxed);
                s.b.store(bits, Ordering::Relaxed);
                s.c.store(bits, Ordering::Relaxed);
                s.d.store(bits, Ordering::Relaxed);
                s.e.store(1, Ordering::Relaxed);
            } else {
                s.a.store(bits, Ordering::Relaxed);
                let min = f64::from_bits(s.b.load(Ordering::Relaxed)).min(value);
                s.b.store(min.to_bits(), Ordering::Relaxed);
                let max = f64::from_bits(s.c.load(Ordering::Relaxed)).max(value);
                s.c.store(max.to_bits(), Ordering::Relaxed);
                let sum = f64::from_bits(s.d.load(Ordering::Relaxed)) + value;
                s.d.store(sum.to_bits(), Ordering::Relaxed);
                s.e.store(s.e.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
            }
        });
    }

    fn record_histogram(&self, at_ns: u64, count: u64, sum: u64, buckets: &[u64]) {
        let (slot, step) = self.slot_for(at_ns);
        slot.write(step, |s, _fresh| {
            s.a.store(count, Ordering::Relaxed);
            s.b.store(sum, Ordering::Relaxed);
            for (dst, &src) in s.buckets.iter().zip(buckets) {
                dst.store(src, Ordering::Relaxed);
            }
        });
    }

    /// Every written slot, ascending by step.
    fn read_all(&self) -> Vec<SlotData> {
        let mut out: Vec<SlotData> = self.slots.iter().filter_map(Slot::read).collect();
        out.sort_by_key(|d| d.step);
        out
    }
}

/// One stored series: kind plus one ring per tier.
struct SeriesData {
    kind: SeriesKind,
    tiers: Vec<TierRing>,
}

impl SeriesData {
    fn new(kind: SeriesKind, specs: &[TierSpec]) -> Self {
        let bucketed = matches!(kind, SeriesKind::Histogram);
        SeriesData {
            kind,
            tiers: specs.iter().map(|&s| TierRing::new(s, bucketed)).collect(),
        }
    }
}

/// Min/max/avg/last of a gauge series over a query window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeWindow {
    /// Most recent sampled value in the window.
    pub last: f64,
    /// Minimum sampled value.
    pub min: f64,
    /// Maximum sampled value.
    pub max: f64,
    /// Sample-weighted mean.
    pub avg: f64,
    /// Samples aggregated into the window.
    pub samples: u64,
}

/// A log2 histogram merged over a query window by bucket-wise
/// subtraction of cumulative ring slots. Bucket bounds are shared with
/// the live [`crate::metrics::Histogram`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowHistogram {
    /// Samples recorded inside the window.
    pub count: u64,
    /// Sum of samples recorded inside the window.
    pub sum: u64,
    /// Per-bucket counts inside the window ([`HISTOGRAM_BUCKETS`]).
    pub buckets: Vec<u64>,
}

impl WindowHistogram {
    /// Estimated quantile over the window, rank-interpolated inside
    /// the target bucket exactly like the live
    /// [`crate::metrics::Histogram`] (see
    /// [`crate::metrics::bucket_quantile_value`]). `None` when the
    /// window is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            if n > 0 && seen + n >= target {
                return Some(bucket_quantile_value(idx, target - seen, n));
            }
            seen += n;
        }
        Some(bucket_bound(HISTOGRAM_BUCKETS - 1))
    }

    /// Mean sample over the window; `None` when empty.
    pub fn mean(&self) -> Option<u64> {
        (self.count > 0).then(|| self.sum / self.count)
    }
}

/// Series name under which the collector samples one per-servable
/// field (`requests`, `cache_hits`, `errors`, `request_latency_ns`).
pub fn servable_series(servable: &str, field: &str) -> String {
    format!("servable.{servable}.{field}")
}

/// Series name under which the collector samples one per-servable SLO
/// field (`burn_fast`, `burn_slow`, `firing`).
pub fn slo_series(servable: &str, field: &str) -> String {
    format!("slo.{servable}.{field}")
}

/// The store: every sampled series with its multi-resolution history,
/// plus the query API the CLI dashboard and control loops read.
///
/// Writers (the collector) must be externally serialized; readers are
/// lock-free against the writer (series creation takes a short write
/// lock on the name map only).
pub struct SeriesStore {
    tiers: Vec<TierSpec>,
    series: RwLock<BTreeMap<String, Arc<SeriesData>>>,
    /// Virtual "now" for queries: the timestamp of the latest sampling
    /// pass, so windowed reads are anchored to data, not wall clock —
    /// which also makes sim-clock queries deterministic.
    last_sample_ns: AtomicU64,
    samples_taken: AtomicU64,
}

impl SeriesStore {
    /// Store with the [`default_tiers`] ladder over `base_step`.
    pub fn new(base_step: Duration) -> Self {
        SeriesStore::with_tiers(default_tiers(base_step))
    }

    /// Store with an explicit tier ladder. Tiers must be ordered
    /// finest-first; the first tier's step is the base sampling step.
    pub fn with_tiers(tiers: Vec<TierSpec>) -> Self {
        assert!(!tiers.is_empty(), "at least one tier");
        assert!(
            tiers.windows(2).all(|w| w[0].step <= w[1].step),
            "tiers must be ordered finest-first"
        );
        SeriesStore {
            tiers,
            series: RwLock::new(BTreeMap::new()),
            last_sample_ns: AtomicU64::new(0),
            samples_taken: AtomicU64::new(0),
        }
    }

    /// The finest tier's step (the collector's sampling interval).
    pub fn base_step(&self) -> Duration {
        self.tiers[0].step
    }

    /// The configured tier ladder.
    pub fn tiers(&self) -> &[TierSpec] {
        &self.tiers
    }

    /// Timestamp of the latest sampling pass (query anchor).
    pub fn last_sample_ns(&self) -> u64 {
        self.last_sample_ns.load(Ordering::Relaxed)
    }

    /// Sampling passes recorded so far.
    pub fn samples_taken(&self) -> u64 {
        self.samples_taken.load(Ordering::Relaxed)
    }

    /// Name-sorted series names.
    pub fn series_names(&self) -> Vec<String> {
        self.series.read().keys().cloned().collect()
    }

    /// A series' kind, `None` if never sampled.
    pub fn kind(&self, name: &str) -> Option<SeriesKind> {
        self.series.read().get(name).map(|s| s.kind)
    }

    fn series_for(&self, name: &str, kind: SeriesKind) -> Arc<SeriesData> {
        if let Some(found) = self.series.read().get(name) {
            return Arc::clone(found);
        }
        let mut map = self.series.write();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(SeriesData::new(kind, &self.tiers))),
        )
    }

    /// Writer side: sample a counter's cumulative value into every
    /// tier's current slot.
    pub fn record_counter(&self, name: &str, at_ns: u64, value: u64) {
        let series = self.series_for(name, SeriesKind::Counter);
        for tier in &series.tiers {
            tier.record_counter(at_ns, value);
        }
    }

    /// Writer side: sample a gauge level; coarser tiers aggregate
    /// last/min/max/sum/n across the base samples inside their step.
    pub fn record_gauge(&self, name: &str, at_ns: u64, value: f64) {
        let series = self.series_for(name, SeriesKind::Gauge);
        for tier in &series.tiers {
            tier.record_gauge(at_ns, value);
        }
    }

    /// Writer side: sample a histogram's cumulative count/sum/buckets.
    pub fn record_histogram(&self, name: &str, at_ns: u64, count: u64, sum: u64, buckets: &[u64]) {
        let series = self.series_for(name, SeriesKind::Histogram);
        for tier in &series.tiers {
            tier.record_histogram(at_ns, count, sum, buckets);
        }
    }

    /// Writer side: close one sampling pass at `at_ns`, advancing the
    /// query anchor.
    pub fn note_pass(&self, at_ns: u64) {
        self.last_sample_ns.store(at_ns, Ordering::Relaxed);
        self.samples_taken.fetch_add(1, Ordering::Relaxed);
    }

    /// Index of the finest tier whose coverage spans `window`; the
    /// coarsest tier when none does.
    fn tier_for(&self, window: Duration) -> usize {
        let w = window.as_nanos();
        self.tiers
            .iter()
            .position(|t| t.coverage().as_nanos() >= w)
            .unwrap_or(self.tiers.len() - 1)
    }

    /// Window slots (ascending) plus the latest slot *before* the
    /// window — the delta baseline for cumulative kinds.
    #[allow(clippy::type_complexity)]
    fn window_slots(
        &self,
        name: &str,
        window: Duration,
    ) -> Option<(SeriesKind, u64, Vec<SlotData>, Option<SlotData>)> {
        let series = {
            let map = self.series.read();
            Arc::clone(map.get(name)?)
        };
        let ring = &series.tiers[self.tier_for(window)];
        let now = self.last_sample_ns();
        let to_step = now / ring.step_ns;
        let from_step =
            now.saturating_sub(window.as_nanos().min(u64::MAX as u128) as u64) / ring.step_ns;
        let all = ring.read_all();
        let baseline = all.iter().rev().find(|d| d.step < from_step).cloned();
        let in_window: Vec<SlotData> = all
            .into_iter()
            .filter(|d| d.step >= from_step && d.step <= to_step)
            .collect();
        Some((series.kind, ring.step_ns, in_window, baseline))
    }

    /// Per-second rate of a counter (or histogram sample count) over
    /// the trailing `window`, as the sum of reset-corrected
    /// consecutive deltas: a cumulative drop (e.g. a restarted
    /// process) contributes the post-reset value instead of a negative
    /// delta. `None` for gauges or with fewer than two samples.
    pub fn rate(&self, name: &str, window: Duration) -> Option<f64> {
        let (kind, step_ns, slots, baseline) = self.window_slots(name, window)?;
        if matches!(kind, SeriesKind::Gauge) {
            return None;
        }
        let points: Vec<(u64, u64)> = baseline
            .iter()
            .chain(slots.iter())
            .map(|d| (d.step * step_ns, d.a))
            .collect();
        if points.len() < 2 {
            return None;
        }
        let total: u64 = points
            .windows(2)
            .map(|w| reset_corrected_delta(w[0].1, w[1].1))
            .sum();
        let span_ns = points.last().unwrap().0 - points[0].0;
        (span_ns > 0).then(|| total as f64 * 1e9 / span_ns as f64)
    }

    /// Min/max/avg/last of a gauge over the trailing `window`. `None`
    /// for non-gauges or when the window holds no samples.
    pub fn gauge_window(&self, name: &str, window: Duration) -> Option<GaugeWindow> {
        let (kind, _step_ns, slots, _baseline) = self.window_slots(name, window)?;
        if !matches!(kind, SeriesKind::Gauge) || slots.is_empty() {
            return None;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0f64;
        let mut samples = 0u64;
        for d in &slots {
            min = min.min(f64::from_bits(d.b));
            max = max.max(f64::from_bits(d.c));
            sum += f64::from_bits(d.d);
            samples += d.e;
        }
        Some(GaugeWindow {
            last: f64::from_bits(slots.last().unwrap().a),
            min,
            max,
            avg: sum / samples.max(1) as f64,
            samples,
        })
    }

    /// Histogram activity inside the trailing `window`, merged from
    /// cumulative ring slots by bucket-wise saturating subtraction.
    /// `None` for non-histograms or when the window holds no slots.
    pub fn histogram_window(&self, name: &str, window: Duration) -> Option<WindowHistogram> {
        let (kind, _step_ns, slots, baseline) = self.window_slots(name, window)?;
        if !matches!(kind, SeriesKind::Histogram) {
            return None;
        }
        let last = slots.last()?;
        let (bcount, bsum) = baseline.as_ref().map(|b| (b.a, b.b)).unwrap_or((0, 0));
        let buckets = last
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                n.saturating_sub(
                    baseline
                        .as_ref()
                        .and_then(|b| b.buckets.get(i))
                        .copied()
                        .unwrap_or(0),
                )
            })
            .collect();
        Some(WindowHistogram {
            count: last.a.saturating_sub(bcount),
            sum: last.b.saturating_sub(bsum),
            buckets,
        })
    }

    /// Per-step plotted points `(slot start ns, value)` over the
    /// trailing `window`: per-second deltas for counters and histogram
    /// counts, in-step averages for gauges. This is the sparkline feed.
    pub fn points(&self, name: &str, window: Duration) -> Vec<(u64, f64)> {
        let Some((kind, step_ns, slots, baseline)) = self.window_slots(name, window) else {
            return Vec::new();
        };
        match kind {
            SeriesKind::Gauge => slots
                .iter()
                .map(|d| (d.step * step_ns, f64::from_bits(d.d) / d.e.max(1) as f64))
                .collect(),
            SeriesKind::Counter | SeriesKind::Histogram => {
                let seq: Vec<&SlotData> = baseline.iter().chain(slots.iter()).collect();
                seq.windows(2)
                    .map(|w| {
                        let span_ns = (w[1].step - w[0].step) * step_ns;
                        let delta = reset_corrected_delta(w[0].a, w[1].a);
                        (
                            w[1].step * step_ns,
                            delta as f64 * 1e9 / span_ns.max(1) as f64,
                        )
                    })
                    .collect()
            }
        }
    }

    /// Least-squares slope of the per-step series over `window`, in
    /// value units per second — positive means the signal is growing.
    /// `None` with fewer than two points or zero time spread.
    pub fn trend(&self, name: &str, window: Duration) -> Option<f64> {
        let points = self.points(name, window);
        if points.len() < 2 {
            return None;
        }
        let t0 = points[0].0;
        let n = points.len() as f64;
        let (mut sx, mut sy, mut sxx, mut sxy) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for (t, y) in &points {
            let x = (t - t0) as f64 / 1e9;
            sx += x;
            sy += y;
            sxx += x * x;
            sxy += x * y;
        }
        let var = n * sxx - sx * sx;
        (var > 0.0).then(|| (n * sxy - sx * sy) / var)
    }

    /// Deterministic JSON export of the whole store: series in name
    /// order, slots in ascending step order, every number derived from
    /// sampled state — two runs that record identical samples at
    /// identical virtual times serialize to identical bytes. Embedded
    /// in `BENCH_*.json` artifacts as the run's time axis.
    pub fn to_json(&self) -> Value {
        self.to_json_capped(usize::MAX)
    }

    /// [`Self::to_json`] with at most `max_points` (newest) points per
    /// tier; each truncated tier reports how many older points were
    /// dropped. Benches embed this form so committed `BENCH_*.json`
    /// artifacts carry a reviewable summary of the run's time axis
    /// instead of tens of thousands of raw ring slots.
    pub fn to_json_capped(&self, max_points: usize) -> Value {
        let series: Vec<Value> = self
            .series
            .read()
            .iter()
            .map(|(name, data)| {
                let tiers: Vec<Value> = data
                    .tiers
                    .iter()
                    .map(|ring| {
                        let all = ring.read_all();
                        let dropped = all.len().saturating_sub(max_points);
                        let points: Vec<Value> = all
                            .iter()
                            .skip(dropped)
                            .map(|d| {
                                let t_ns = d.step * ring.step_ns;
                                match data.kind {
                                    SeriesKind::Counter => json!({ "t_ns": t_ns, "v": d.a }),
                                    SeriesKind::Gauge => json!({
                                        "t_ns": t_ns,
                                        "last": f64::from_bits(d.a),
                                        "min": f64::from_bits(d.b),
                                        "max": f64::from_bits(d.c),
                                        "sum": f64::from_bits(d.d),
                                        "n": d.e,
                                    }),
                                    SeriesKind::Histogram => json!({
                                        "t_ns": t_ns,
                                        "count": d.a,
                                        "sum": d.b,
                                        "buckets": d
                                            .buckets
                                            .iter()
                                            .enumerate()
                                            .filter(|(_, &n)| n > 0)
                                            .map(|(i, &n)| json!([i, n]))
                                            .collect::<Vec<Value>>(),
                                    }),
                                }
                            })
                            .collect();
                        json!({
                            "step_ns": ring.step_ns,
                            "points": points,
                            "points_dropped": dropped,
                        })
                    })
                    .collect();
                json!({ "name": name, "kind": data.kind.as_str(), "tiers": tiers })
            })
            .collect();
        json!({
            "base_step_ns": self.tiers[0].step.as_nanos().min(u64::MAX as u128) as u64,
            "tiers": self
                .tiers
                .iter()
                .map(|t| json!({
                    "step_ns": t.step.as_nanos().min(u64::MAX as u128) as u64,
                    "capacity": t.capacity,
                }))
                .collect::<Vec<Value>>(),
            "samples_taken": self.samples_taken(),
            "last_sample_ns": self.last_sample_ns(),
            "series": series,
        })
    }
}

/// Delta between consecutive cumulative samples with counter-reset
/// handling: a drop means the source restarted, so the post-reset
/// value *is* the activity since.
fn reset_corrected_delta(prev: u64, cur: u64) -> u64 {
    if cur >= prev {
        cur - prev
    } else {
        cur
    }
}

/// Read-only windowed control-plane view over a [`SeriesStore`]:
/// the signals an autoscaler or admission controller consumes, named
/// after what they mean rather than how they are stored.
#[derive(Clone)]
pub struct ControlSignals {
    store: Arc<SeriesStore>,
}

impl ControlSignals {
    /// Wrap a store.
    pub fn new(store: Arc<SeriesStore>) -> Self {
        ControlSignals { store }
    }

    /// The underlying store (escape hatch for ad-hoc queries).
    pub fn store(&self) -> &Arc<SeriesStore> {
        &self.store
    }

    /// Requests per second answered for `servable` over `window`.
    pub fn arrival_rate(&self, servable: &str, window: Duration) -> Option<f64> {
        self.store
            .rate(&servable_series(servable, "requests"), window)
    }

    /// Slope of the arrival rate (req/s per second): positive means
    /// traffic is ramping.
    pub fn arrival_trend(&self, servable: &str, window: Duration) -> Option<f64> {
        self.store
            .trend(&servable_series(servable, "requests"), window)
    }

    /// Errors per second for `servable` over `window`.
    pub fn error_rate(&self, servable: &str, window: Duration) -> Option<f64> {
        self.store
            .rate(&servable_series(servable, "errors"), window)
    }

    /// Request latency merged over `window` for `servable`.
    pub fn request_latency(&self, servable: &str, window: Duration) -> Option<WindowHistogram> {
        self.store
            .histogram_window(&servable_series(servable, "request_latency_ns"), window)
    }

    /// Broker queue wait merged over `window` (ns).
    pub fn queue_wait(&self, window: Duration) -> Option<WindowHistogram> {
        self.store.histogram_window("broker_queue_wait_ns", window)
    }

    /// Async injector queue depth over `window`.
    pub fn queue_depth(&self, window: Duration) -> Option<GaugeWindow> {
        self.store.gauge_window("async_queue_depth", window)
    }

    /// Async worker-pool occupancy over `window`.
    pub fn pool_occupancy(&self, window: Duration) -> Option<GaugeWindow> {
        self.store.gauge_window("async_pool_active", window)
    }

    /// Fast-window SLO burn rate (max of the latency and availability
    /// objectives) for `servable` over `window`.
    pub fn burn_rate(&self, servable: &str, window: Duration) -> Option<GaugeWindow> {
        self.store
            .gauge_window(&slo_series(servable, "burn_fast"), window)
    }

    /// Per-step burn-rate history (sparkline feed).
    pub fn burn_history(&self, servable: &str, window: Duration) -> Vec<(u64, f64)> {
        self.store
            .points(&slo_series(servable, "burn_fast"), window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_tiers() -> Vec<TierSpec> {
        vec![
            TierSpec {
                step: Duration::from_secs(1),
                capacity: 4,
            },
            TierSpec {
                step: Duration::from_secs(10),
                capacity: 6,
            },
        ]
    }

    const S: u64 = 1_000_000_000;

    #[test]
    fn counter_rate_over_window() {
        let store = SeriesStore::with_tiers(tiny_tiers());
        for step in 0..4u64 {
            store.record_counter("reqs", step * S, step * 100);
            store.note_pass(step * S);
        }
        // 100 per second over 3 seconds of deltas.
        let rate = store.rate("reqs", Duration::from_secs(4)).unwrap();
        assert!((rate - 100.0).abs() < 1e-9, "{rate}");
        // Gauge queries on a counter series refuse.
        assert!(store.gauge_window("reqs", Duration::from_secs(4)).is_none());
    }

    #[test]
    fn ring_wraparound_keeps_only_the_newest_capacity_steps() {
        let store = SeriesStore::with_tiers(tiny_tiers());
        for step in 0..10u64 {
            store.record_counter("reqs", step * S, step * 10);
            store.note_pass(step * S);
        }
        // Fine tier holds 4 slots: steps 6..=9 survive.
        let points = store.points("reqs", Duration::from_secs(4));
        assert_eq!(points.len(), 3, "{points:?}");
        assert_eq!(points[0].0, 7 * S);
        assert_eq!(points.last().unwrap().0, 9 * S);
        // The coarse tier still has the full history in one slot.
        let rate = store.rate("reqs", Duration::from_secs(60));
        assert!(rate.is_none(), "single coarse slot cannot rate: {rate:?}");
    }

    #[test]
    fn tier_boundary_selects_coarser_ring() {
        let store = SeriesStore::with_tiers(tiny_tiers());
        // 35 seconds of samples: fine tier (4s coverage) wraps, coarse
        // tier (60s coverage) retains everything.
        for step in 0..35u64 {
            store.record_counter("reqs", step * S, step * 10);
            store.note_pass(step * S);
        }
        let fine = store.rate("reqs", Duration::from_secs(3)).unwrap();
        let coarse = store.rate("reqs", Duration::from_secs(30)).unwrap();
        assert!((fine - 10.0).abs() < 1e-9, "{fine}");
        // Coarse endpoints quantize to 10 s boundaries: cumulative 90
        // (latest sample inside step 0) to 340 over 30 s.
        assert!((coarse - 250.0 / 30.0).abs() < 1e-9, "{coarse}");
        // Coarse points land on 10s boundaries.
        let pts = store.points("reqs", Duration::from_secs(30));
        assert!(pts.iter().all(|(t, _)| t % (10 * S) == 0), "{pts:?}");
    }

    #[test]
    fn counter_reset_contributes_post_reset_value() {
        let store = SeriesStore::with_tiers(tiny_tiers());
        let values = [100u64, 200, 30, 60];
        for (step, &v) in values.iter().enumerate() {
            store.record_counter("reqs", step as u64 * S, v);
            store.note_pass(step as u64 * S);
        }
        // Deltas: 100, then reset→30, then 30 over 3 seconds.
        let rate = store.rate("reqs", Duration::from_secs(4)).unwrap();
        let expected = (100.0 + 30.0 + 30.0) / 3.0;
        assert!((rate - expected).abs() < 1e-9, "{rate} vs {expected}");
    }

    #[test]
    fn gauge_windows_aggregate_min_max_avg_across_tiers() {
        let store = SeriesStore::with_tiers(tiny_tiers());
        // 30 base samples: values 0,1,2,...,29.
        for step in 0..30u64 {
            store.record_gauge("depth", step * S, step as f64);
            store.note_pass(step * S);
        }
        // Window [26 s, 29 s] spans four inclusive base slots.
        let fine = store.gauge_window("depth", Duration::from_secs(3)).unwrap();
        assert_eq!(fine.last, 29.0);
        assert_eq!(fine.min, 26.0);
        assert_eq!(fine.max, 29.0);
        // The coarse tier aggregated 10 base samples per slot.
        let coarse = store
            .gauge_window("depth", Duration::from_secs(30))
            .unwrap();
        assert_eq!(coarse.last, 29.0);
        assert_eq!(coarse.min, 0.0);
        assert_eq!(coarse.max, 29.0);
        assert_eq!(coarse.samples, 30);
        assert!((coarse.avg - 14.5).abs() < 1e-9, "{}", coarse.avg);
    }

    #[test]
    fn histogram_windows_merge_by_bucket_subtraction() {
        let store = SeriesStore::with_tiers(tiny_tiers());
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        let mut count = 0u64;
        let mut sum = 0u64;
        // Step 0: 10 samples of value 100; steps 1-3: add 5 samples of
        // value 1000 each step.
        let mut record = |store: &SeriesStore, step: u64, v: u64, n: u64| {
            for _ in 0..n {
                buckets[crate::metrics::bucket_index(v)] += 1;
                count += 1;
                sum += v;
            }
            store.record_histogram("lat", step * S, count, sum, &buckets);
            store.note_pass(step * S);
        };
        record(&store, 0, 100, 10);
        record(&store, 1, 1000, 5);
        record(&store, 2, 1000, 5);
        record(&store, 3, 1000, 5);
        // A 2 s window from now=3 s covers steps 1..=3 and subtracts
        // step 0's cumulative baseline.
        let w = store
            .histogram_window("lat", Duration::from_secs(2))
            .unwrap();
        assert_eq!(w.count, 15);
        assert_eq!(w.sum, 15_000);
        // All windowed samples are 1000: the interpolated p50 must
        // land inside 1000's log2 bucket (not pinned to its bound).
        let p50 = w.quantile(0.5).unwrap();
        assert_eq!(
            crate::metrics::bucket_index(p50),
            crate::metrics::bucket_index(1000),
            "{p50}"
        );
        assert_eq!(w.mean(), Some(1000));
        // Full-history window has no baseline: everything counts.
        let all = store
            .histogram_window("lat", Duration::from_secs(60))
            .unwrap();
        assert_eq!(all.count, 25);
    }

    #[test]
    fn trend_slope_tracks_growth_and_decay() {
        let store = SeriesStore::with_tiers(tiny_tiers());
        for step in 0..4u64 {
            store.record_gauge("up", step * S, step as f64 * 2.0);
            store.record_gauge("down", step * S, 100.0 - step as f64 * 3.0);
            store.record_gauge("flat", step * S, 5.0);
            store.note_pass(step * S);
        }
        let up = store.trend("up", Duration::from_secs(4)).unwrap();
        let down = store.trend("down", Duration::from_secs(4)).unwrap();
        let flat = store.trend("flat", Duration::from_secs(4)).unwrap();
        assert!((up - 2.0).abs() < 1e-9, "{up}");
        assert!((down + 3.0).abs() < 1e-9, "{down}");
        assert!(flat.abs() < 1e-9, "{flat}");
    }

    #[test]
    fn export_is_deterministic_and_ordered() {
        let build = || {
            let store = SeriesStore::with_tiers(tiny_tiers());
            for step in 0..6u64 {
                store.record_counter("b.counter", step * S, step * 7);
                store.record_gauge("a.gauge", step * S, step as f64 / 3.0);
                let buckets = {
                    let mut b = [0u64; HISTOGRAM_BUCKETS];
                    b[5] = step;
                    b
                };
                store.record_histogram("c.hist", step * S, step, step * 31, &buckets);
                store.note_pass(step * S);
            }
            serde_json::to_string(&store.to_json()).unwrap()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        let doc: Value = serde_json::from_str(&a).unwrap();
        let names: Vec<&str> = doc["series"]
            .as_array()
            .unwrap()
            .iter()
            .map(|s| s["name"].as_str().unwrap())
            .collect();
        assert_eq!(names, vec!["a.gauge", "b.counter", "c.hist"]);
        assert_eq!(doc["samples_taken"], 6);
        assert_eq!(doc["base_step_ns"], S);
    }

    #[test]
    fn concurrent_readers_never_see_torn_slots() {
        let store = Arc::new(SeriesStore::with_tiers(vec![TierSpec {
            step: Duration::from_millis(1),
            capacity: 8,
        }]));
        // Writer publishes matched (a == value) counters; readers must
        // only ever observe fully-published slots.
        let writer = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                for i in 0..50_000u64 {
                    store.record_counter("x", i * 1_000_000, i);
                    store.note_pass(i * 1_000_000);
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        let _ = store.rate("x", Duration::from_millis(8));
                        let _ = store.points("x", Duration::from_millis(8));
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert!(store.samples_taken() == 50_000);
    }

    #[test]
    fn control_signals_read_the_conventional_names() {
        let store = Arc::new(SeriesStore::with_tiers(tiny_tiers()));
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        buckets[crate::metrics::bucket_index(1 << 20)] = 4;
        for step in 0..4u64 {
            store.record_counter(
                &servable_series("dlhub/echo", "requests"),
                step * S,
                step * 50,
            );
            store.record_counter(&servable_series("dlhub/echo", "errors"), step * S, 0);
            store.record_gauge("async_pool_active", step * S, 2.0);
            store.record_gauge(&slo_series("dlhub/echo", "burn_fast"), step * S, 0.25);
            store.record_histogram("broker_queue_wait_ns", step * S, 4, 4 << 20, &buckets);
            store.note_pass(step * S);
        }
        let signals = ControlSignals::new(Arc::clone(&store));
        let w = Duration::from_secs(4);
        assert!((signals.arrival_rate("dlhub/echo", w).unwrap() - 50.0).abs() < 1e-9);
        assert_eq!(signals.error_rate("dlhub/echo", w), Some(0.0));
        assert_eq!(signals.pool_occupancy(w).unwrap().last, 2.0);
        assert!((signals.burn_rate("dlhub/echo", w).unwrap().avg - 0.25).abs() < 1e-9);
        let wait = signals.queue_wait(w).unwrap();
        assert_eq!(wait.count, 4);
        assert!(wait.quantile(0.99).unwrap() >= 1 << 20);
        assert!(!signals.burn_history("dlhub/echo", w).is_empty());
    }
}
