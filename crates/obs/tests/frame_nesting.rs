//! Property test for the profiler's frame protocol: arbitrary
//! well-nested push/pop/sample sequences, sampled deterministically,
//! must collapse into exactly the paths that were live at each sample
//! — never a torn, interleaved, or unbalanced path.

use dlhub_obs::ProfilerHandle;
use proptest::prelude::*;
use std::collections::HashMap;

const NAMES: [&str; 5] = ["serve", "memo", "broker", "rpc", "exec"];

const PUSH: u8 = 0;
const POP: u8 = 1;
const SAMPLE: u8 = 2;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn collapsed_stacks_are_exactly_the_live_paths(
        ops in proptest::collection::vec((0..NAMES.len(), 0u8..3), 0..80)
    ) {
        let profiler = ProfilerHandle::disabled();
        prop_assert!(profiler.enable(0));
        // Guards drop LIFO off the end of the vec, so any op sequence
        // is well-nested by construction — the property checks the
        // *profiler* preserves that nesting in its samples.
        let mut guards = Vec::new();
        let mut path: Vec<String> = Vec::new();
        let mut expected: HashMap<Vec<String>, u64> = HashMap::new();
        // The thread only registers with the profiler on its first
        // frame push; samples taken before that observe no threads.
        let mut registered = false;
        let sample = |path: &[String],
                          registered: bool,
                          expected: &mut HashMap<Vec<String>, u64>| {
            let threads = profiler.sample_now();
            if !registered {
                assert_eq!(threads, 0, "sampled an unregistered thread");
                return;
            }
            let key = if path.is_empty() {
                vec!["(idle)".to_string()]
            } else {
                path.to_vec()
            };
            *expected.entry(key).or_default() += 1;
        };
        for (name, op) in ops {
            match op {
                PUSH if guards.len() < 16 => {
                    guards.push(profiler.frame(NAMES[name]));
                    path.push(NAMES[name].to_string());
                    registered = true;
                }
                POP if guards.pop().is_some() => {
                    path.pop();
                }
                SAMPLE => sample(&path, registered, &mut expected),
                _ => {}
            }
        }
        // A final sample once the stack has fully unwound: registered
        // runs must collapse to the `(idle)` pseudo-path.
        while guards.pop().is_some() {
            path.pop();
        }
        sample(&path, registered, &mut expected);

        let report = profiler.report().expect("profiler enabled");
        let total: u64 = expected.values().sum();
        prop_assert_eq!(report.total_samples, total);
        // The report's own invariant: per-thread counts and per-path
        // counts are both partitions of the sample total.
        let thread_sum: u64 = report.threads.iter().map(|t| t.samples).sum();
        let stack_sum: u64 = report.stacks.iter().map(|s| s.count).sum();
        prop_assert_eq!(thread_sum, total);
        prop_assert_eq!(stack_sum, total);
        // Single-threaded deterministic sampling never loses a seqlock
        // race, so no sample may degrade to the torn-read marker.
        prop_assert!(report.stacks.iter().all(|s| s.frames != ["(unstable)"]));
        // Exact path-by-path match: everything sampled is reported and
        // nothing unsampled is invented.
        let mut observed: HashMap<Vec<String>, u64> = HashMap::new();
        for stack in &report.stacks {
            *observed.entry(stack.frames.clone()).or_default() += stack.count;
        }
        prop_assert_eq!(observed, expected);
    }
}
