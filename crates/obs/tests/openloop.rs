//! Property tests for the open-loop recorder: the corrected
//! (intended-start) latency dominates the raw service latency for
//! every request, individually and at every quantile, and the HDR
//! histogram honours the exact-sort oracle under random loads.

use dlhub_obs::{HdrHistogram, OpenLoopRecorder, OpenLoopSample};
use proptest::prelude::*;

proptest! {
    /// For any schedule (intended <= started <= completed), the
    /// corrected latency is >= the raw service latency per request,
    /// and therefore at every recorded quantile too.
    #[test]
    fn corrected_latency_dominates_raw_service_latency(
        requests in proptest::collection::vec(
            // (intended, backlog wait, service time) — all ns offsets.
            (0u64..10_000_000_000, 0u64..500_000_000, 1u64..200_000_000),
            1..200,
        )
    ) {
        let rec = OpenLoopRecorder::new();
        for (i, &(intended, backlog, service)) in requests.iter().enumerate() {
            let sample = OpenLoopSample {
                intended_ns: intended,
                started_ns: intended + backlog,
                completed_ns: intended + backlog + service,
                trace: i as u64 + 1,
            };
            // Per-request domination.
            prop_assert!(sample.corrected_ns() >= sample.uncorrected_ns());
            prop_assert_eq!(sample.uncorrected_ns(), service);
            prop_assert_eq!(sample.corrected_ns(), backlog + service);
            rec.record(sample);
        }
        // Distribution-level domination at every reported quantile.
        let report = rec.report().unwrap();
        prop_assert!(report.corrected.p50 >= report.uncorrected.p50);
        prop_assert!(report.corrected.p99 >= report.uncorrected.p99);
        prop_assert!(report.corrected.p999 >= report.uncorrected.p999);
        prop_assert!(report.corrected.max >= report.uncorrected.max);
        prop_assert_eq!(report.corrected.count, requests.len() as u64);
    }

    /// HDR quantiles track an exact sort within the advertised
    /// log-linear resolution for arbitrary sample sets.
    #[test]
    fn hdr_quantiles_track_exact_sort(
        mut values in proptest::collection::vec(1u64..100_000_000_000, 10..400),
        q_idx in 0usize..4,
    ) {
        let q = [0.5f64, 0.9, 0.99, 0.999][q_idx];
        let h = HdrHistogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).max(1) - 1;
        let exact = values[rank];
        let got = h.quantile(q).unwrap();
        let tolerance = (exact as f64 / dlhub_obs::HDR_SUB_BUCKETS as f64 * 2.0).max(1.0);
        prop_assert!(
            (got as f64 - exact as f64).abs() <= tolerance,
            "q={} exact={} got={}", q, exact, got
        );
    }
}
