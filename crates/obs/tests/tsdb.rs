//! Property and integration tests for the time-series layer: the
//! merged-histogram percentile against an exact-sort oracle, ring
//! wraparound under long runs, and collector end-to-end sampling.

use std::time::Duration;

use dlhub_obs::{bucket_bound, bucket_index, Obs, SeriesStore, TierSpec};
use proptest::prelude::*;

const S: u64 = 1_000_000_000;
const BUCKETS: usize = dlhub_obs::metrics::HISTOGRAM_BUCKETS;

/// Exact-sort oracle: the value at the exact rank the windowed
/// quantile targets.
fn oracle_quantile(values: &mut [u64], q: f64) -> Option<u64> {
    if values.is_empty() {
        return None;
    }
    values.sort_unstable();
    let target = ((q * values.len() as f64).ceil() as usize).max(1) - 1;
    Some(values[target])
}

proptest! {
    /// Feed random latency batches through cumulative ring slots, then
    /// check the windowed p50/p90/p99 against sorting the raw samples:
    /// because the log2 buckets are merged exactly (bucket-wise
    /// subtraction, no re-aggregation), the rank-interpolated windowed
    /// quantile must land inside the same log2 bucket as the exact
    /// rank-order value, never above the bucket's bound.
    #[test]
    fn merged_histogram_percentiles_match_exact_sort_oracle(
        batches in proptest::collection::vec(
            proptest::collection::vec(1u64..=1_000_000_000, 0..40),
            2..20,
        ),
        q_idx in 0usize..3,
    ) {
        let q = [0.5f64, 0.9, 0.99][q_idx];
        let store = SeriesStore::with_tiers(vec![TierSpec {
            step: Duration::from_secs(1),
            // Never wraps within the run, so every batch stays visible.
            capacity: 64,
        }]);
        let mut cum_buckets = [0u64; BUCKETS];
        let mut cum_count = 0u64;
        let mut cum_sum = 0u64;
        let mut window_values: Vec<u64> = Vec::new();
        let baseline_steps = 1usize; // batch 0 falls outside the window
        for (step, batch) in batches.iter().enumerate() {
            for &v in batch {
                cum_buckets[bucket_index(v)] += 1;
                cum_count += 1;
                cum_sum += v;
                if step >= baseline_steps {
                    window_values.push(v);
                }
            }
            store.record_histogram("lat", step as u64 * S, cum_count, cum_sum, &cum_buckets);
            store.note_pass(step as u64 * S);
        }
        // Window spanning steps 1..=last (inclusive boundaries),
        // leaving step 0 as the cumulative baseline.
        let window = Duration::from_secs(batches.len() as u64 - 2);
        let merged = store.histogram_window("lat", window).unwrap();
        prop_assert_eq!(merged.count as usize, window_values.len());
        let got = merged.quantile(q);
        let exact = oracle_quantile(&mut window_values, q);
        prop_assert_eq!(got.is_some(), exact.is_some());
        if let (Some(got), Some(exact)) = (got, exact) {
            prop_assert_eq!(
                bucket_index(got),
                bucket_index(exact),
                "q={} got={} exact={}", q, got, exact
            );
            prop_assert!(got <= bucket_bound(bucket_index(exact)));
        }
    }

    /// rate() over any window never goes negative and reset-corrected
    /// totals never exceed the raw cumulative maximum plus resets.
    #[test]
    fn rate_is_never_negative(
        values in proptest::collection::vec(0u64..=10_000, 2..50),
        window_s in 1u64..100,
    ) {
        let store = SeriesStore::with_tiers(vec![TierSpec {
            step: Duration::from_secs(1),
            capacity: 64,
        }]);
        for (step, &v) in values.iter().enumerate() {
            store.record_counter("c", step as u64 * S, v);
            store.note_pass(step as u64 * S);
        }
        if let Some(rate) = store.rate("c", Duration::from_secs(window_s)) {
            prop_assert!(rate >= 0.0, "{rate}");
        }
    }
}

#[test]
fn long_run_wraparound_preserves_recent_rates() {
    let store = SeriesStore::with_tiers(vec![
        TierSpec {
            step: Duration::from_secs(1),
            capacity: 8,
        },
        TierSpec {
            step: Duration::from_secs(10),
            capacity: 8,
        },
    ]);
    // 500 steps at 3/s: both tiers wrap many times over.
    for step in 0..500u64 {
        store.record_counter("reqs", step * S, step * 3);
        store.note_pass(step * S);
    }
    let fine = store.rate("reqs", Duration::from_secs(5)).unwrap();
    assert!((fine - 3.0).abs() < 1e-9, "{fine}");
    let coarse = store.rate("reqs", Duration::from_secs(60)).unwrap();
    // Coarse endpoints quantize to 10 s slots; rate stays within 10 %.
    assert!((coarse - 3.0).abs() < 0.3, "{coarse}");
    // Every surviving fine point is within the last 8 steps.
    let pts = store.points("reqs", Duration::from_secs(8));
    assert!(!pts.is_empty());
    assert!(pts.iter().all(|(t, _)| *t >= (500 - 8) * S), "{pts:?}");
}

#[test]
fn obs_handle_collects_end_to_end() {
    let obs = Obs::new();
    assert!(!obs.telemetry.enabled());
    obs.enable_telemetry_manual(Duration::from_secs(1));
    assert!(obs.telemetry.enabled());
    obs.metrics.counter("broker_send_total").add(10);
    obs.metrics.gauge("async_queue_depth").set(4);
    obs.metrics.series("dlhub/echo").requests.add(2);
    obs.metrics
        .series("dlhub/echo")
        .request_latency
        .record(2_000_000);
    obs.telemetry.sample_now(S).unwrap();
    obs.metrics.counter("broker_send_total").add(10);
    obs.metrics.series("dlhub/echo").requests.add(6);
    obs.telemetry.sample_now(2 * S).unwrap();

    let signals = obs.telemetry.signals().unwrap();
    let w = Duration::from_secs(2);
    let arrival = signals.arrival_rate("dlhub/echo", w).unwrap();
    assert!((arrival - 6.0).abs() < 1e-9, "{arrival}");
    let depth = signals.queue_depth(w).unwrap();
    assert_eq!(depth.last, 4.0);
    let store = obs.telemetry.store().unwrap();
    let rate = store.rate("broker_send_total", w).unwrap();
    assert!((rate - 10.0).abs() < 1e-9, "{rate}");
    let lat = signals.request_latency("dlhub/echo", w).unwrap();
    assert_eq!(lat.count, 1);
    assert!(lat.quantile(0.5).unwrap() >= 2_000_000);
}
