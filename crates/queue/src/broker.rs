//! The broker: named topics with leased, at-least-once delivery.
//!
//! Semantics mirror what DLHub needs from ZeroMQ (§IV-A): the
//! Management Service posts tasks, Task Managers pull them, and a task
//! that is pulled but never acknowledged (a crashed Task Manager) is
//! redelivered to another consumer.
//!
//! Topic storage is a [`ShardedRing`]: producers and consumers hit
//! independently locked ring segments instead of serializing on one
//! `Mutex<TopicState>`, lease tracking lives in a hash-sharded
//! in-flight map keyed by message id, and all statistics are relaxed
//! atomics so `Broker::stats` never takes a lock. The earliest lease
//! expiry is cached in a single atomic so the receive hot path pays one
//! load — not an in-flight scan — to decide whether reaping is due.

use crate::message::{Message, MessageId};
use crate::shard::{CachePadded, RingObs, ShardedRing};
use crate::stats::{AtomicTopicStats, TopicStats};
use bytes::Bytes;
use dlhub_fault::{site, FaultHandle, FaultKind};
use dlhub_obs::{ContentionRegistry, ContentionSite, Counter, Histogram, Obs, ProfilerHandle};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Errors surfaced by broker operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueueError {
    /// The named topic does not exist.
    NoSuchTopic(String),
    /// A topic with this name already exists.
    TopicExists(String),
    /// The topic is bounded and full (try_send only).
    Full(String),
    /// The topic was drained and closed; no more messages will arrive.
    Closed(String),
    /// recv_timeout elapsed with no message available.
    Timeout,
}

impl fmt::Display for QueueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueError::NoSuchTopic(t) => write!(f, "no such topic: {t}"),
            QueueError::TopicExists(t) => write!(f, "topic already exists: {t}"),
            QueueError::Full(t) => write!(f, "topic full: {t}"),
            QueueError::Closed(t) => write!(f, "topic closed: {t}"),
            QueueError::Timeout => write!(f, "receive timed out"),
        }
    }
}

impl std::error::Error for QueueError {}

/// Per-topic configuration.
#[derive(Debug, Clone)]
pub struct TopicConfig {
    /// Maximum queued (ready) messages; `None` = unbounded.
    pub capacity: Option<usize>,
    /// Lease duration after which an unacked delivery is requeued.
    pub lease: Duration,
    /// Delivery attempts before a message moves to the dead-letter
    /// queue. 0 is treated as 1.
    pub max_attempts: u32,
}

impl Default for TopicConfig {
    fn default() -> Self {
        TopicConfig {
            capacity: None,
            lease: Duration::from_secs(30),
            max_attempts: 5,
        }
    }
}

/// Broker-wide configuration; currently the default [`TopicConfig`]
/// applied by [`Broker::create_topic`].
#[derive(Debug, Clone, Default)]
pub struct BrokerConfig {
    /// Defaults applied to topics created without an explicit config.
    pub topic_defaults: TopicConfig,
    /// Fault-injection schedule consulted at [`site::BROKER_SEND`] and
    /// [`site::BROKER_RECV`]. Disabled (one branch per operation) by
    /// default.
    pub faults: FaultHandle,
}

/// Number of in-flight map shards per topic. Power of two; message ids
/// are a process-wide counter so `id & mask` spreads leases uniformly.
const FLIGHT_SHARDS: usize = 8;

/// `next_expiry` sentinel: no lease outstanding.
const NO_EXPIRY: u64 = u64::MAX;

struct InFlight {
    /// Shares the delivered message's refcounted payload and reply
    /// topic — retaining a lease never copies bytes.
    message: Message,
    lease_expires: Instant,
    /// Ring segment the message was claimed from; redelivery returns
    /// it to the front of the same segment.
    ring_shard: usize,
}

type FlightMap = Mutex<HashMap<MessageId, InFlight>>;

struct Topic {
    config: TopicConfig,
    /// Ready messages, sharded across independently locked segments.
    ring: ShardedRing<Message>,
    /// Leased-but-unsettled messages, sharded by message id.
    in_flight: Box<[CachePadded<FlightMap>]>,
    dead: Mutex<Vec<Message>>,
    closed: AtomicBool,
    /// Earliest outstanding lease expiry, as nanoseconds since `epoch`
    /// ([`NO_EXPIRY`] when none). Leasing `fetch_min`s its expiry in;
    /// the receive paths compare one load against "now" to decide
    /// whether any reaping is due, instead of scanning in-flight maps.
    next_expiry: AtomicU64,
    epoch: Instant,
    stats: AtomicTopicStats,
    /// Senders parked on a full bounded topic. Same registration
    /// discipline as the ring's consumer parking: a sender registers
    /// and re-tries its reservation under `space_mutex` before
    /// waiting, and anyone freeing a slot only takes the mutex when
    /// `space_waiters > 0`.
    space_waiters: AtomicUsize,
    space_mutex: Mutex<()>,
    space_cv: Condvar,
    /// Contention site for senders parked on a full bounded topic,
    /// resolved when observability attaches.
    space_obs: OnceLock<Arc<ContentionSite>>,
}

impl Topic {
    fn new(config: TopicConfig) -> Self {
        let in_flight = (0..FLIGHT_SHARDS)
            .map(|_| CachePadded(Mutex::new(HashMap::new())))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Topic {
            config,
            ring: ShardedRing::new(),
            in_flight,
            dead: Mutex::new(Vec::new()),
            closed: AtomicBool::new(false),
            next_expiry: AtomicU64::new(NO_EXPIRY),
            epoch: Instant::now(),
            stats: AtomicTopicStats::default(),
            space_waiters: AtomicUsize::new(0),
            space_mutex: Mutex::new(()),
            space_cv: Condvar::new(),
            space_obs: OnceLock::new(),
        }
    }

    fn flight_shard(&self, id: MessageId) -> &FlightMap {
        &self.in_flight[(id.0 as usize) & (FLIGHT_SHARDS - 1)].0
    }

    /// Register a lease expiry so receive paths know when reaping is
    /// next due.
    fn note_expiry(&self, at: Instant) {
        let nanos = at.saturating_duration_since(self.epoch).as_nanos() as u64;
        self.next_expiry
            .fetch_min(nanos.min(NO_EXPIRY - 1), Ordering::SeqCst);
    }

    fn next_expiry_instant(&self) -> Option<Instant> {
        let nanos = self.next_expiry.load(Ordering::SeqCst);
        (nanos != NO_EXPIRY).then(|| self.epoch + Duration::from_nanos(nanos))
    }

    fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Close and wake everything parked on this topic.
    fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.ring.wake_all();
        drop(self.space_mutex.lock());
        self.space_cv.notify_all();
    }
}

/// A leased message. Call [`Delivery::ack`] on success or
/// [`Delivery::nack`] to trigger immediate redelivery. Dropping a
/// `Delivery` without acking leaves the lease to expire naturally,
/// modelling a crashed consumer.
pub struct Delivery {
    /// The leased message.
    pub message: Message,
    /// How long the message sat in the ready queue before this lease
    /// (per delivery: a redelivery reports its own wait).
    pub queue_wait: Duration,
    topic: Arc<Topic>,
    settled: bool,
}

impl Delivery {
    /// Acknowledge successful processing; the message is removed.
    pub fn ack(mut self) {
        let removed = self
            .topic
            .flight_shard(self.message.id)
            .lock()
            .remove(&self.message.id)
            .is_some();
        if removed {
            self.topic.stats.acked.fetch_add(1, Ordering::Relaxed);
        }
        self.settled = true;
    }

    /// Negatively acknowledge: requeue now (or dead-letter if the
    /// attempt budget is exhausted).
    pub fn nack(mut self) {
        let max_attempts = self.topic.config.max_attempts.max(1);
        let flight = self
            .topic
            .flight_shard(self.message.id)
            .lock()
            .remove(&self.message.id);
        if let Some(mut f) = flight {
            if f.message.attempts >= max_attempts {
                self.topic
                    .stats
                    .dead_lettered
                    .fetch_add(1, Ordering::Relaxed);
                self.topic.dead.lock().push(f.message);
            } else {
                self.topic.stats.redelivered.fetch_add(1, Ordering::Relaxed);
                // Re-stamp for the new queue residency: the next
                // lease's queue_wait measures this wait, not the
                // message's whole lifetime, so stage sums stay an
                // exact partition of request time.
                f.message.enqueued_at = Instant::now();
                // The in-flight record already shares the payload —
                // requeueing moves the handle, no bytes are copied.
                self.topic.ring.push_front(f.ring_shard, f.message);
            }
        }
        self.settled = true;
    }
}

impl fmt::Debug for Delivery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Delivery")
            .field("message", &self.message.id)
            .field("settled", &self.settled)
            .finish()
    }
}

/// The message broker. Cheap to clone (`Arc` inside).
#[derive(Clone)]
pub struct Broker {
    inner: Arc<BrokerInner>,
}

/// Pre-resolved observability instruments: one registry lookup at
/// attach time, plain atomics on the send/recv paths thereafter.
struct BrokerObs {
    send: Arc<Counter>,
    recv: Arc<Counter>,
    queue_wait: Arc<Histogram>,
    dropped: Arc<Counter>,
    redelivered: Arc<Counter>,
    /// Registry per-topic sites are resolved from when topics appear.
    contention: ContentionRegistry,
    /// Profiler whose frames mark the publish/lease hot paths.
    profiler: ProfilerHandle,
    /// Write-held topic-registry lock observed by readers.
    topics_lock: Arc<ContentionSite>,
}

struct BrokerInner {
    config: BrokerConfig,
    // Read-mostly: every send/recv resolves a topic name, while
    // topics are created and deleted rarely. A shared lock keeps the
    // per-request lookup contention-free.
    topics: RwLock<HashMap<String, Arc<Topic>>>,
    obs: OnceLock<BrokerObs>,
}

impl Broker {
    /// Create a broker with the given defaults.
    pub fn new(config: BrokerConfig) -> Self {
        Broker {
            inner: Arc::new(BrokerInner {
                config,
                topics: RwLock::new(HashMap::new()),
                obs: OnceLock::new(),
            }),
        }
    }

    /// Mirror this broker's traffic into a metrics registry:
    /// `broker_send_total` / `broker_recv_total` counters plus a
    /// `broker_queue_wait_ns` histogram of how long messages sat in the
    /// queue before being leased. `broker_dropped_total` counts sends
    /// discarded by fault injection and `broker_redelivered_total`
    /// counts lease-expiry requeues observed by the receive paths (nack
    /// requeues land only in [`TopicStats::redelivered`]). Park/wait
    /// points additionally register per-topic contention sites
    /// (`broker.ring.park:<topic>`, `broker.ring.claim:<topic>`,
    /// `broker.send.space_wait:<topic>`) and the publish/lease paths
    /// mark profiler frames. First attachment wins; later calls are
    /// no-ops (the broker is shared by clones).
    pub fn attach_obs(&self, obs: &Obs) {
        let _ = self.inner.obs.set(BrokerObs {
            send: obs
                .metrics
                .counter_with_help("broker_send_total", "Messages published across all topics"),
            recv: obs
                .metrics
                .counter_with_help("broker_recv_total", "Messages delivered to consumers"),
            queue_wait: obs.metrics.histogram_with_help(
                "broker_queue_wait_ns",
                "Time messages spent queued before delivery",
            ),
            dropped: obs.metrics.counter_with_help(
                "broker_dropped_total",
                "Messages dropped by bounded rings under backpressure",
            ),
            redelivered: obs.metrics.counter_with_help(
                "broker_redelivered_total",
                "Messages requeued after a lease expired unacknowledged",
            ),
            contention: obs.contention.clone(),
            profiler: obs.profile.clone(),
            topics_lock: obs.contention.site("broker.topics_lock"),
        });
        // Topics created before attachment get their sites now.
        for (name, topic) in self.inner.topics.read().iter() {
            self.instrument_topic(name, topic);
        }
    }

    /// Resolve the per-topic contention sites once, so wait paths never
    /// touch the registry map.
    fn instrument_topic(&self, name: &str, topic: &Topic) {
        if let Some(obs) = self.inner.obs.get() {
            topic.ring.attach_obs(RingObs {
                park: obs.contention.site(&format!("broker.ring.park:{name}")),
                claim: obs.contention.site(&format!("broker.ring.claim:{name}")),
            });
            let _ = topic.space_obs.set(
                obs.contention
                    .site(&format!("broker.send.space_wait:{name}")),
            );
        }
    }

    /// Create a topic with the broker's default topic configuration.
    pub fn create_topic(&self, name: &str) -> Result<(), QueueError> {
        self.create_topic_with(name, self.inner.config.topic_defaults.clone())
    }

    /// Create a topic with an explicit configuration.
    pub fn create_topic_with(&self, name: &str, config: TopicConfig) -> Result<(), QueueError> {
        let topic = {
            let mut topics = self.inner.topics.write();
            if topics.contains_key(name) {
                return Err(QueueError::TopicExists(name.to_string()));
            }
            let topic = Arc::new(Topic::new(config));
            topics.insert(name.to_string(), Arc::clone(&topic));
            topic
        };
        self.instrument_topic(name, &topic);
        Ok(())
    }

    /// Create the topic if it does not exist yet; never fails.
    pub fn ensure_topic(&self, name: &str) {
        if self.inner.topics.read().contains_key(name) {
            return;
        }
        let topic =
            {
                let mut topics = self.inner.topics.write();
                Arc::clone(topics.entry(name.to_string()).or_insert_with(|| {
                    Arc::new(Topic::new(self.inner.config.topic_defaults.clone()))
                }))
            };
        self.instrument_topic(name, &topic);
    }

    /// List existing topic names (unordered).
    pub fn topics(&self) -> Vec<String> {
        self.inner.topics.read().keys().cloned().collect()
    }

    /// Delete a topic, dropping all queued and in-flight messages.
    pub fn delete_topic(&self, name: &str) -> Result<(), QueueError> {
        let topic = {
            let mut topics = self.inner.topics.write();
            topics
                .remove(name)
                .ok_or_else(|| QueueError::NoSuchTopic(name.to_string()))?
        };
        topic.close();
        Ok(())
    }

    /// Close a topic: queued messages may still be drained, but new
    /// sends fail and receivers see [`QueueError::Closed`] once empty.
    pub fn close_topic(&self, name: &str) -> Result<(), QueueError> {
        self.topic(name)?.close();
        Ok(())
    }

    fn topic(&self, name: &str) -> Result<Arc<Topic>, QueueError> {
        // Read-mostly lock: the uncontended try_read is the hot path;
        // only a reader blocked behind a topic create/delete writer
        // records a wait.
        let topics = match self.inner.topics.try_read() {
            Some(guard) => guard,
            None => {
                let waited_from = self.inner.obs.get().map(|_| Instant::now());
                let guard = self.inner.topics.read();
                if let (Some(obs), Some(at)) = (self.inner.obs.get(), waited_from) {
                    obs.topics_lock.record(at.elapsed());
                }
                guard
            }
        };
        topics
            .get(name)
            .cloned()
            .ok_or_else(|| QueueError::NoSuchTopic(name.to_string()))
    }

    /// Enqueue `payload` as a fresh message. Blocks while a bounded
    /// topic is full.
    pub fn send(&self, topic: &str, payload: Bytes) -> Result<MessageId, QueueError> {
        self.send_message(topic, Message::new(payload))
    }

    /// Enqueue a pre-built message (used by the RPC layer to set
    /// reply-to/correlation metadata). Blocks while full.
    pub fn send_message(&self, name: &str, message: Message) -> Result<MessageId, QueueError> {
        let _frame = self
            .inner
            .obs
            .get()
            .map(|o| o.profiler.frame("broker.publish"));
        let topic = self.topic(name)?;
        self.acquire_slot(&topic, name)?;
        self.enqueue(&topic, message)
    }

    /// Non-blocking send; fails with [`QueueError::Full`] when bounded
    /// capacity is exhausted.
    pub fn try_send(&self, name: &str, payload: Bytes) -> Result<MessageId, QueueError> {
        let topic = self.topic(name)?;
        if topic.is_closed() {
            return Err(QueueError::Closed(name.to_string()));
        }
        match topic.config.capacity {
            Some(cap) if !topic.ring.reserve(cap) => {
                return Err(QueueError::Full(name.to_string()))
            }
            Some(_) => {}
            None => topic.ring.force_reserve(),
        }
        self.enqueue(&topic, Message::new(payload))
    }

    /// Reserve a ready-queue slot, parking while a bounded topic is
    /// full. On return the caller owns one slot.
    fn acquire_slot(&self, topic: &Topic, name: &str) -> Result<(), QueueError> {
        loop {
            if topic.is_closed() {
                return Err(QueueError::Closed(name.to_string()));
            }
            let Some(cap) = topic.config.capacity else {
                topic.ring.force_reserve();
                return Ok(());
            };
            if topic.ring.reserve(cap) {
                return Ok(());
            }
            // Register, then re-try the reservation under the space
            // mutex before waiting; `wake_space` frees the slot before
            // checking `space_waiters`, so either we see the slot here
            // or the waker sees us and notifies.
            let mut guard = topic.space_mutex.lock();
            topic.space_waiters.fetch_add(1, Ordering::SeqCst);
            let got = topic.ring.reserve(cap);
            if !got && !topic.is_closed() {
                // Only the actual block is timed; the reservation fast
                // path above never reaches here.
                let waited_from = topic.space_obs.get().map(|_| Instant::now());
                topic.space_cv.wait(&mut guard);
                if let (Some(site), Some(at)) = (topic.space_obs.get(), waited_from) {
                    site.record(at.elapsed());
                }
            }
            topic.space_waiters.fetch_sub(1, Ordering::SeqCst);
            drop(guard);
            if got {
                return Ok(());
            }
        }
    }

    /// Publish into an already-reserved slot, honouring the send fault
    /// site.
    fn enqueue(&self, topic: &Topic, message: Message) -> Result<MessageId, QueueError> {
        let id = message.id;
        if self.drop_send_injected(topic) {
            topic.ring.release();
            self.wake_space(topic);
            return Ok(id);
        }
        topic.stats.enqueued.fetch_add(1, Ordering::Relaxed);
        topic.ring.push_back(message);
        if let Some(obs) = self.inner.obs.get() {
            obs.send.inc();
        }
        Ok(id)
    }

    /// Consult the send fault site; on a `Drop` fault the message is
    /// discarded after the caller saw a successful send — exactly the
    /// lost-publish failure mode of a flaky transport.
    fn drop_send_injected(&self, topic: &Topic) -> bool {
        if let Some(fault) = self.inner.config.faults.decide(site::BROKER_SEND) {
            if fault.kind == FaultKind::Drop {
                topic.stats.dropped.fetch_add(1, Ordering::Relaxed);
                if let Some(obs) = self.inner.obs.get() {
                    obs.dropped.inc();
                }
                return true;
            }
        }
        false
    }

    /// Wake one sender parked on a full bounded topic.
    fn wake_space(&self, topic: &Topic) {
        if topic.config.capacity.is_some() && topic.space_waiters.load(Ordering::SeqCst) > 0 {
            drop(topic.space_mutex.lock());
            topic.space_cv.notify_one();
        }
    }

    /// Blocking receive: waits until a message is available, leases it
    /// and returns the [`Delivery`].
    pub fn recv(&self, name: &str) -> Result<Delivery, QueueError> {
        self.recv_deadline(name, None)
    }

    /// Receive with a timeout.
    pub fn recv_timeout(&self, name: &str, timeout: Duration) -> Result<Delivery, QueueError> {
        self.recv_deadline(name, Some(Instant::now() + timeout))
    }

    /// Non-blocking receive.
    pub fn try_recv(&self, name: &str) -> Result<Option<Delivery>, QueueError> {
        let topic = self.topic(name)?;
        self.reap_if_due(&topic);
        match topic.ring.try_claim() {
            Some((ring_shard, message)) => {
                let d = self.lease(&topic, ring_shard, message);
                // Leasing freed a ready slot, so a sender blocked on a
                // bounded topic must be woken.
                self.wake_space(&topic);
                if self.abandon_recv_injected() {
                    // The lease stands but the consumer "crashed":
                    // redelivery waits for the lease to expire.
                    drop(d);
                    return Ok(None);
                }
                Ok(Some(d))
            }
            None if topic.is_closed() => Err(QueueError::Closed(name.to_string())),
            None => Ok(None),
        }
    }

    fn mirror_redelivered(&self, reaped: usize) {
        if reaped > 0 {
            if let Some(obs) = self.inner.obs.get() {
                obs.redelivered.add(reaped as u64);
            }
        }
    }

    /// Consult the recv fault site; a `Drop` fault abandons the lease
    /// just granted, modelling a consumer that died with the message in
    /// hand — the broker's lease expiry is what recovers it.
    fn abandon_recv_injected(&self) -> bool {
        matches!(
            self.inner.config.faults.decide(site::BROKER_RECV),
            Some(fault) if fault.kind == FaultKind::Drop
        )
    }

    fn recv_deadline(&self, name: &str, deadline: Option<Instant>) -> Result<Delivery, QueueError> {
        let _frame = self
            .inner
            .obs
            .get()
            .map(|o| o.profiler.frame("broker.lease"));
        let topic = self.topic(name)?;
        loop {
            self.reap_if_due(&topic);
            if let Some((ring_shard, message)) = topic.ring.try_claim() {
                let d = self.lease(&topic, ring_shard, message);
                self.wake_space(&topic);
                if self.abandon_recv_injected() {
                    // Abandon the lease and keep waiting: the message
                    // comes back through the reaper once the lease
                    // runs out.
                    drop(d);
                    continue;
                }
                return Ok(d);
            }
            if topic.is_closed() {
                return Err(QueueError::Closed(name.to_string()));
            }
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return Err(QueueError::Timeout);
                }
            }
            // Wake up early enough to reap the next lease expiry even
            // if no new message arrives.
            let until = match (deadline, topic.next_expiry_instant()) {
                (Some(d), Some(e)) => Some(d.min(e)),
                (Some(d), None) => Some(d),
                (None, e) => e,
            };
            topic.ring.park(until, || topic.is_closed());
        }
    }

    /// Requeue in-flight messages whose lease has expired, if the
    /// cached earliest expiry says any could have. One atomic load on
    /// the common (nothing due) path.
    fn reap_if_due(&self, topic: &Topic) {
        let due = topic.next_expiry.load(Ordering::SeqCst);
        if due == NO_EXPIRY {
            return;
        }
        let now = Instant::now();
        if (now.saturating_duration_since(topic.epoch).as_nanos() as u64) < due {
            return;
        }
        // Claim this reap: exactly one caller per observed expiry value
        // proceeds. A failed exchange means a concurrent reaper took it
        // (or a sooner expiry just landed, which re-triggers us).
        if topic
            .next_expiry
            .compare_exchange(due, NO_EXPIRY, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return;
        }
        let max_attempts = topic.config.max_attempts.max(1);
        let mut requeued = 0usize;
        for shard in topic.in_flight.iter() {
            let mut map = shard.0.lock();
            let expired: Vec<MessageId> = map
                .iter()
                .filter(|(_, f)| f.lease_expires <= now)
                .map(|(id, _)| *id)
                .collect();
            for id in expired {
                let mut f = map.remove(&id).expect("expired id present");
                if f.message.attempts >= max_attempts {
                    topic.stats.dead_lettered.fetch_add(1, Ordering::Relaxed);
                    topic.dead.lock().push(f.message);
                } else {
                    topic.stats.redelivered.fetch_add(1, Ordering::Relaxed);
                    // Same re-stamp as nack: queue_wait measures this
                    // residency, not time spent leased to the crashed
                    // consumer.
                    f.message.enqueued_at = now;
                    topic.ring.push_front(f.ring_shard, f.message);
                    requeued += 1;
                }
            }
            // Re-register the survivors so the next expiry stays
            // visible. Leases inserted concurrently either appeared in
            // this scan or `fetch_min` their expiry in after our reset.
            if let Some(min) = map.values().map(|f| f.lease_expires).min() {
                topic.note_expiry(min);
            }
        }
        self.mirror_redelivered(requeued);
    }

    fn lease(&self, topic: &Arc<Topic>, ring_shard: usize, mut message: Message) -> Delivery {
        message.attempts += 1;
        let queue_wait = message.enqueued_at.elapsed();
        topic.stats.delivered.fetch_add(1, Ordering::Relaxed);
        topic.stats.record_wait(queue_wait);
        if let Some(obs) = self.inner.obs.get() {
            obs.recv.inc();
            obs.queue_wait.record_duration(queue_wait);
        }
        let lease_expires = Instant::now() + topic.config.lease;
        // Shallow clone: the in-flight record shares the delivered
        // message's refcounted payload and reply topic.
        topic.flight_shard(message.id).lock().insert(
            message.id,
            InFlight {
                message: message.clone(),
                lease_expires,
                ring_shard,
            },
        );
        topic.note_expiry(lease_expires);
        Delivery {
            message,
            queue_wait,
            topic: Arc::clone(topic),
            settled: false,
        }
    }

    /// Number of ready (not in-flight) messages on a topic.
    pub fn depth(&self, name: &str) -> Result<usize, QueueError> {
        Ok(self.topic(name)?.ring.len())
    }

    /// Number of leased-but-unsettled messages.
    pub fn in_flight(&self, name: &str) -> Result<usize, QueueError> {
        let topic = self.topic(name)?;
        Ok(topic.in_flight.iter().map(|s| s.0.lock().len()).sum())
    }

    /// Drain the dead-letter queue for a topic.
    pub fn take_dead_letters(&self, name: &str) -> Result<Vec<Message>, QueueError> {
        Ok(std::mem::take(&mut self.topic(name)?.dead.lock()))
    }

    /// Snapshot the delivery statistics of a topic. Lock-free: the
    /// counters are relaxed atomics maintained on the hot paths.
    pub fn stats(&self, name: &str) -> Result<TopicStats, QueueError> {
        Ok(self.topic(name)?.stats.snapshot())
    }
}

impl fmt::Debug for Broker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Broker")
            .field("topics", &self.topics())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn b() -> Broker {
        let b = Broker::new(BrokerConfig::default());
        b.create_topic("t").unwrap();
        b
    }

    #[test]
    fn fifo_order_preserved() {
        let broker = b();
        for i in 0..10u8 {
            broker.send("t", Bytes::copy_from_slice(&[i])).unwrap();
        }
        for i in 0..10u8 {
            let d = broker.recv("t").unwrap();
            assert_eq!(d.message.payload[0], i);
            d.ack();
        }
    }

    #[test]
    fn send_to_missing_topic_fails() {
        let broker = Broker::new(BrokerConfig::default());
        assert!(matches!(
            broker.send("nope", Bytes::new()),
            Err(QueueError::NoSuchTopic(_))
        ));
    }

    #[test]
    fn duplicate_topic_rejected() {
        let broker = b();
        assert!(matches!(
            broker.create_topic("t"),
            Err(QueueError::TopicExists(_))
        ));
    }

    #[test]
    fn ensure_topic_is_idempotent() {
        let broker = b();
        broker.ensure_topic("t");
        broker.ensure_topic("u");
        let mut topics = broker.topics();
        topics.sort();
        assert_eq!(topics, vec!["t".to_string(), "u".to_string()]);
    }

    #[test]
    fn nack_redelivers_immediately() {
        let broker = b();
        broker.send("t", Bytes::from_static(b"x")).unwrap();
        let d = broker.recv("t").unwrap();
        assert_eq!(d.message.attempts, 1);
        d.nack();
        let d2 = broker.recv("t").unwrap();
        assert_eq!(d2.message.attempts, 2);
        d2.ack();
        assert_eq!(broker.depth("t").unwrap(), 0);
        assert_eq!(broker.in_flight("t").unwrap(), 0);
    }

    #[test]
    fn lease_expiry_requeues() {
        let broker = Broker::new(BrokerConfig::default());
        broker
            .create_topic_with(
                "t",
                TopicConfig {
                    lease: Duration::from_millis(10),
                    ..TopicConfig::default()
                },
            )
            .unwrap();
        broker.send("t", Bytes::from_static(b"x")).unwrap();
        let d = broker.recv("t").unwrap();
        // Simulate a crashed consumer: forget the delivery.
        std::mem::forget(d);
        // Second recv should block until the lease expires, then get
        // the redelivered message.
        let d2 = broker.recv_timeout("t", Duration::from_secs(2)).unwrap();
        assert_eq!(d2.message.attempts, 2);
        d2.ack();
        assert_eq!(broker.stats("t").unwrap().redelivered, 1);
    }

    #[test]
    fn dead_letter_after_max_attempts() {
        let broker = Broker::new(BrokerConfig::default());
        broker
            .create_topic_with(
                "t",
                TopicConfig {
                    max_attempts: 2,
                    ..TopicConfig::default()
                },
            )
            .unwrap();
        broker.send("t", Bytes::from_static(b"poison")).unwrap();
        broker.recv("t").unwrap().nack(); // attempt 1
        broker.recv("t").unwrap().nack(); // attempt 2 -> dead letter
        assert!(broker.try_recv("t").unwrap().is_none());
        let dead = broker.take_dead_letters("t").unwrap();
        assert_eq!(dead.len(), 1);
        assert_eq!(&dead[0].payload[..], b"poison");
        assert_eq!(broker.stats("t").unwrap().dead_lettered, 1);
    }

    #[test]
    fn try_send_respects_capacity() {
        let broker = Broker::new(BrokerConfig::default());
        broker
            .create_topic_with(
                "t",
                TopicConfig {
                    capacity: Some(2),
                    ..TopicConfig::default()
                },
            )
            .unwrap();
        broker.try_send("t", Bytes::new()).unwrap();
        broker.try_send("t", Bytes::new()).unwrap();
        assert!(matches!(
            broker.try_send("t", Bytes::new()),
            Err(QueueError::Full(_))
        ));
        // Draining frees space again.
        broker.recv("t").unwrap().ack();
        broker.try_send("t", Bytes::new()).unwrap();
    }

    #[test]
    fn blocking_send_unblocks_on_recv() {
        let broker = Broker::new(BrokerConfig::default());
        broker
            .create_topic_with(
                "t",
                TopicConfig {
                    capacity: Some(1),
                    ..TopicConfig::default()
                },
            )
            .unwrap();
        broker.send("t", Bytes::from_static(b"a")).unwrap();
        let b2 = broker.clone();
        let h = thread::spawn(move || b2.send("t", Bytes::from_static(b"b")).unwrap());
        thread::sleep(Duration::from_millis(20));
        broker.recv("t").unwrap().ack();
        h.join().unwrap();
        let d = broker.recv("t").unwrap();
        assert_eq!(&d.message.payload[..], b"b");
        d.ack();
    }

    #[test]
    fn try_recv_frees_space_for_blocked_sender() {
        let broker = Broker::new(BrokerConfig::default());
        broker
            .create_topic_with(
                "t",
                TopicConfig {
                    capacity: Some(1),
                    ..TopicConfig::default()
                },
            )
            .unwrap();
        broker.send("t", Bytes::from_static(b"a")).unwrap();
        let b2 = broker.clone();
        let h = thread::spawn(move || b2.send("t", Bytes::from_static(b"b")).unwrap());
        thread::sleep(Duration::from_millis(20));
        // A non-blocking consumer must also wake the blocked sender.
        let d = broker.try_recv("t").unwrap().expect("message ready");
        d.ack();
        h.join().unwrap();
        let d = broker.recv("t").unwrap();
        assert_eq!(&d.message.payload[..], b"b");
        d.ack();
    }

    #[test]
    fn recv_timeout_times_out() {
        let broker = b();
        let err = broker
            .recv_timeout("t", Duration::from_millis(20))
            .unwrap_err();
        assert_eq!(err, QueueError::Timeout);
    }

    #[test]
    fn close_topic_drains_then_errors() {
        let broker = b();
        broker.send("t", Bytes::from_static(b"x")).unwrap();
        broker.close_topic("t").unwrap();
        // Existing message can still be drained.
        let d = broker.recv("t").unwrap();
        d.ack();
        assert!(matches!(broker.recv("t"), Err(QueueError::Closed(_))));
        assert!(matches!(
            broker.send("t", Bytes::new()),
            Err(QueueError::Closed(_))
        ));
    }

    #[test]
    fn concurrent_producers_consumers_deliver_everything_once() {
        let broker = b();
        let n_producers = 4;
        let per_producer = 250;
        let total = n_producers * per_producer;
        let mut handles = Vec::new();
        for p in 0..n_producers {
            let br = broker.clone();
            handles.push(thread::spawn(move || {
                for i in 0..per_producer {
                    let v = (p * per_producer + i) as u32;
                    br.send("t", Bytes::copy_from_slice(&v.to_le_bytes()))
                        .unwrap();
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..4 {
            let br = broker.clone();
            consumers.push(thread::spawn(move || {
                let mut seen = Vec::new();
                while let Ok(d) = br.recv_timeout("t", Duration::from_millis(300)) {
                    let mut buf = [0u8; 4];
                    buf.copy_from_slice(&d.message.payload[..4]);
                    seen.push(u32::from_le_bytes(buf));
                    d.ack();
                }
                seen
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all.len(), total);
        assert_eq!(all, (0..total as u32).collect::<Vec<_>>());
        let stats = broker.stats("t").unwrap();
        assert_eq!(stats.enqueued, total as u64);
        assert_eq!(stats.acked, total as u64);
    }

    #[test]
    fn attached_registry_mirrors_topic_stats() {
        let broker = b();
        let obs = Obs::new();
        broker.attach_obs(&obs);
        // A second attach (e.g. from a clone) is a harmless no-op.
        broker.clone().attach_obs(&Obs::new());
        for i in 0..5u8 {
            broker.send("t", Bytes::copy_from_slice(&[i])).unwrap();
        }
        for _ in 0..3 {
            broker.recv("t").unwrap().ack();
        }
        let stats = broker.stats("t").unwrap();
        let metrics = &obs.metrics;
        assert_eq!(metrics.counter("broker_send_total").get(), stats.enqueued);
        assert_eq!(metrics.counter("broker_recv_total").get(), stats.delivered);
        assert_eq!(metrics.histogram("broker_queue_wait_ns").count(), 3);
    }

    #[test]
    fn parked_consumer_waits_land_in_the_topic_contention_site() {
        let broker = b();
        let obs = Obs::new();
        broker.attach_obs(&obs);
        let b2 = broker.clone();
        let h = thread::spawn(move || b2.recv("t"));
        // Let the consumer park, then publish to wake it.
        thread::sleep(Duration::from_millis(30));
        broker.send("t", Bytes::from_static(b"x")).unwrap();
        h.join().unwrap().unwrap().ack();
        let site = obs.contention.site("broker.ring.park:t");
        assert!(site.waits() >= 1, "park wait not recorded");
        let snap = site.snapshot();
        assert!(snap.wait_ns > 0);
        // Topics created *after* attachment get sites too.
        broker.create_topic("late").unwrap();
        let b3 = broker.clone();
        let h = thread::spawn(move || b3.recv("late"));
        thread::sleep(Duration::from_millis(30));
        broker.send("late", Bytes::from_static(b"y")).unwrap();
        h.join().unwrap().unwrap().ack();
        assert!(obs.contention.site("broker.ring.park:late").waits() >= 1);
    }

    #[test]
    fn blocked_sender_waits_land_in_the_space_site() {
        let broker = Broker::new(BrokerConfig::default());
        broker
            .create_topic_with(
                "t",
                TopicConfig {
                    capacity: Some(1),
                    ..TopicConfig::default()
                },
            )
            .unwrap();
        let obs = Obs::new();
        broker.attach_obs(&obs);
        broker.send("t", Bytes::from_static(b"a")).unwrap();
        let b2 = broker.clone();
        let h = thread::spawn(move || b2.send("t", Bytes::from_static(b"b")).unwrap());
        thread::sleep(Duration::from_millis(30));
        broker.recv("t").unwrap().ack();
        h.join().unwrap();
        assert!(obs.contention.site("broker.send.space_wait:t").waits() >= 1);
        broker.recv("t").unwrap().ack();
    }

    #[test]
    fn redelivery_restamps_the_enqueue_instant() {
        let broker = b();
        broker.send("t", Bytes::from_static(b"x")).unwrap();
        // Hold the delivery long enough that a stale stamp would show.
        let d = broker.recv("t").unwrap();
        thread::sleep(Duration::from_millis(50));
        d.nack();
        let d2 = broker.recv("t").unwrap();
        // The redelivered wait covers only the new residency, not the
        // 50ms the first consumer sat on the message.
        assert!(
            d2.queue_wait < Duration::from_millis(40),
            "stale enqueue stamp inflated queue_wait: {:?}",
            d2.queue_wait
        );
        d2.ack();
    }

    #[test]
    fn lease_expiry_redelivery_restamps_too() {
        let broker = Broker::new(BrokerConfig::default());
        broker
            .create_topic_with(
                "t",
                TopicConfig {
                    lease: Duration::from_millis(10),
                    ..TopicConfig::default()
                },
            )
            .unwrap();
        broker.send("t", Bytes::from_static(b"x")).unwrap();
        std::mem::forget(broker.recv("t").unwrap());
        // Wait well past the lease so the stale stamp would dominate.
        thread::sleep(Duration::from_millis(60));
        let d2 = broker.recv_timeout("t", Duration::from_secs(2)).unwrap();
        assert_eq!(d2.message.attempts, 2);
        assert!(
            d2.queue_wait < Duration::from_millis(50),
            "reaped redelivery kept its original stamp: {:?}",
            d2.queue_wait
        );
        d2.ack();
    }

    #[test]
    fn stats_track_queue_wait() {
        let broker = b();
        broker.send("t", Bytes::new()).unwrap();
        thread::sleep(Duration::from_millis(5));
        broker.recv("t").unwrap().ack();
        let stats = broker.stats("t").unwrap();
        assert!(stats.mean_wait() >= Duration::from_millis(4));
    }

    #[test]
    fn redelivery_shares_the_payload_allocation() {
        let broker = b();
        broker
            .send("t", Bytes::copy_from_slice(b"zero-copy"))
            .unwrap();
        let d = broker.recv("t").unwrap();
        let before = d.message.payload.as_ptr();
        d.nack();
        let d2 = broker.recv("t").unwrap();
        // Redelivery hands back the same refcounted buffer.
        assert_eq!(d2.message.payload.as_ptr(), before);
        d2.ack();
    }

    #[test]
    fn closed_topic_wakes_parked_receiver() {
        let broker = b();
        let b2 = broker.clone();
        let h = thread::spawn(move || b2.recv("t"));
        thread::sleep(Duration::from_millis(20));
        broker.close_topic("t").unwrap();
        assert!(matches!(h.join().unwrap(), Err(QueueError::Closed(_))));
    }
}
