#![warn(missing_docs)]

//! # dlhub-queue
//!
//! A ZeroMQ-like, in-process reliable message broker.
//!
//! The DLHub paper (§IV-A) dispatches serving tasks from the Management
//! Service to registered Task Managers over a ZeroMQ queue that
//! "provides a reliable messaging model that ensures tasks are received
//! and executed". This crate rebuilds that substrate natively:
//!
//! * **Topics** — named FIFO queues, many producers / many consumers.
//! * **At-least-once delivery** — a consumer *leases* a message; the
//!   message is redelivered if the lease expires or the consumer
//!   negatively acknowledges it, and dropped to a dead-letter queue
//!   after a configurable number of attempts.
//! * **Request/reply** — the RPC pattern the Management Service uses:
//!   a request is posted to a topic and the reply is routed back to the
//!   requester over an ephemeral reply channel, exactly like a ZeroMQ
//!   `REQ`/`REP` pair over a `ROUTER` broker.
//! * **Backpressure** — topics may be bounded; `send` blocks (or fails,
//!   with `try_send`) when a topic is full.
//!
//! Everything is thread-safe; topic storage is a hash-sharded MPMC
//! ring ([`shard::ShardedRing`]) so producers and consumers hit
//! independent segment locks, with condvar parking only on the idle
//! paths. There is no global registry, a [`Broker`] is an ordinary
//! value shared via `Arc`.
//!
//! ```
//! use dlhub_queue::{Broker, BrokerConfig};
//! use bytes::Bytes;
//!
//! let broker = Broker::new(BrokerConfig::default());
//! broker.create_topic("tasks").unwrap();
//! broker.send("tasks", Bytes::from_static(b"hello")).unwrap();
//! let delivery = broker.recv("tasks").unwrap();
//! assert_eq!(&delivery.message.payload[..], b"hello");
//! delivery.ack();
//! ```

pub mod broker;
pub mod message;
pub mod rpc;
pub mod shard;
pub mod stats;

pub use broker::{Broker, BrokerConfig, Delivery, QueueError, TopicConfig};
pub use message::{Message, MessageId};
pub use rpc::{ReplyHandle, RequestInfo, RpcClient, RpcError, RpcServer, ServeOutcome};
pub use stats::TopicStats;

// Re-export the fault-injection vocabulary so consumers configure the
// broker's `BrokerConfig::faults` without a separate dependency.
pub use dlhub_fault as fault;
