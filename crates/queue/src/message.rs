//! Message envelope types shared by the broker and the RPC layer.

use bytes::Bytes;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Globally unique (per-process) message identifier.
///
/// ZeroMQ frames carry routing identities; we use a monotonically
/// increasing 64-bit counter which is cheaper and sufficient for an
/// in-process broker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MessageId(pub u64);

impl MessageId {
    /// Allocate the next process-wide message id.
    pub fn next() -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(1);
        MessageId(COUNTER.fetch_add(1, Ordering::Relaxed))
    }
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "msg-{}", self.0)
    }
}

/// A message queued on a topic.
#[derive(Debug, Clone)]
pub struct Message {
    /// Unique id, assigned at enqueue time.
    pub id: MessageId,
    /// Opaque payload. The serving layer serializes task requests into
    /// this field; the broker never inspects it.
    pub payload: Bytes,
    /// Name of the reply topic for request/reply flows, if any.
    /// Refcounted so cloning a message (lease tracking, redelivery)
    /// never reallocates the topic name.
    pub reply_to: Option<Arc<str>>,
    /// Correlates a reply with its request (the request's id).
    pub correlation_id: Option<MessageId>,
    /// How many times this message has been handed to a consumer.
    pub attempts: u32,
    /// Wall-clock enqueue instant, used for queue-latency stats.
    pub enqueued_at: Instant,
}

impl Message {
    /// Create a fresh message carrying `payload`.
    pub fn new(payload: Bytes) -> Self {
        Message {
            id: MessageId::next(),
            payload,
            reply_to: None,
            correlation_id: None,
            attempts: 0,
            enqueued_at: Instant::now(),
        }
    }

    /// Create a request message expecting a reply on `reply_to`.
    pub fn request(payload: Bytes, reply_to: impl Into<Arc<str>>) -> Self {
        let mut m = Message::new(payload);
        m.reply_to = Some(reply_to.into());
        m
    }

    /// Create a reply to `request`, preserving its correlation id.
    pub fn reply_to(request: &Message, payload: Bytes) -> Self {
        let mut m = Message::new(payload);
        m.correlation_id = Some(request.id);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_ids_are_unique_and_increasing() {
        let a = MessageId::next();
        let b = MessageId::next();
        assert!(b > a);
        assert_ne!(a, b);
    }

    #[test]
    fn request_sets_reply_topic() {
        let m = Message::request(Bytes::from_static(b"x"), "replies");
        assert_eq!(m.reply_to.as_deref(), Some("replies"));
        assert!(m.correlation_id.is_none());
    }

    #[test]
    fn reply_preserves_correlation() {
        let req = Message::request(Bytes::from_static(b"x"), "replies");
        let rep = Message::reply_to(&req, Bytes::from_static(b"y"));
        assert_eq!(rep.correlation_id, Some(req.id));
    }

    #[test]
    fn display_is_stable() {
        let m = MessageId(42);
        assert_eq!(m.to_string(), "msg-42");
    }
}
