//! Request/reply on top of the broker, mirroring ZeroMQ REQ/REP.
//!
//! The Management Service "packages up the request and posts it to a
//! ZeroMQ queue … and [results are] returned via the same queue"
//! (§IV-A). [`RpcClient`] posts requests to a service topic and waits
//! on a private reply topic; [`RpcServer`] is the consumer side used by
//! Task Managers.

use crate::broker::{Broker, QueueError};
use crate::message::{Message, MessageId};
use bytes::Bytes;
use dlhub_obs::{ContentionSite, Obs, ProfilerHandle};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// RPC-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// Underlying queue failure.
    Queue(QueueError),
    /// The reply did not arrive before the deadline.
    Timeout,
    /// The client was dropped before the reply arrived.
    Canceled,
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Queue(e) => write!(f, "queue error: {e}"),
            RpcError::Timeout => write!(f, "rpc timed out"),
            RpcError::Canceled => write!(f, "rpc canceled"),
        }
    }
}

impl std::error::Error for RpcError {}

impl From<QueueError> for RpcError {
    fn from(e: QueueError) -> Self {
        RpcError::Queue(e)
    }
}

/// Number of reply-table shards. Power of two; message ids come from a
/// process-wide counter, so `id & mask` spreads correlation slots
/// uniformly.
const REPLY_SHARDS: usize = 8;

struct ReplyShard {
    replies: Mutex<HashMap<MessageId, Option<Bytes>>>,
    cv: Condvar,
}

/// Reply correlation table, sharded by request id so concurrent
/// callers (and the pump) stop serializing on one mutex.
struct PendingTable {
    shards: Box<[ReplyShard]>,
}

impl PendingTable {
    fn new() -> Self {
        PendingTable {
            shards: (0..REPLY_SHARDS)
                .map(|_| ReplyShard {
                    replies: Mutex::new(HashMap::new()),
                    cv: Condvar::new(),
                })
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        }
    }

    fn shard(&self, id: MessageId) -> &ReplyShard {
        &self.shards[(id.0 as usize) & (REPLY_SHARDS - 1)]
    }
}

/// Client side of the request/reply pattern.
///
/// Each client owns a private reply topic (`<service>.reply.<n>`) and a
/// background pump thread that routes replies to waiting callers by
/// correlation id, so many requests can be outstanding at once.
pub struct RpcClient {
    broker: Broker,
    service_topic: String,
    reply_topic: Arc<str>,
    pending: Arc<PendingTable>,
    pump: Option<std::thread::JoinHandle<()>>,
    obs: OnceLock<RpcClientObs>,
}

/// Pre-resolved observability for one client: the reply-wait
/// contention site and the profiler whose `rpc.wait` frames mark
/// blocked callers.
struct RpcClientObs {
    reply_wait: Arc<ContentionSite>,
    profiler: ProfilerHandle,
}

static CLIENT_SEQ: AtomicU64 = AtomicU64::new(0);

impl RpcClient {
    /// Connect a client to `service_topic`, creating the topic if
    /// needed.
    pub fn connect(broker: &Broker, service_topic: &str) -> Self {
        broker.ensure_topic(service_topic);
        let reply_topic: Arc<str> = format!(
            "{service_topic}.reply.{}",
            CLIENT_SEQ.fetch_add(1, Ordering::Relaxed)
        )
        .into();
        broker.ensure_topic(&reply_topic);
        let pending = Arc::new(PendingTable::new());
        let pump = {
            let broker = broker.clone();
            let reply_topic = Arc::clone(&reply_topic);
            let pending = Arc::clone(&pending);
            std::thread::Builder::new()
                .name(format!("rpc-pump-{reply_topic}"))
                .spawn(move || {
                    // Runs until the reply topic closes or is deleted.
                    while let Ok(delivery) = broker.recv(&reply_topic) {
                        let corr = delivery.message.correlation_id;
                        let payload = delivery.message.payload.clone();
                        delivery.ack();
                        if let Some(corr) = corr {
                            let shard = pending.shard(corr);
                            let mut replies = shard.replies.lock();
                            // Only store replies someone is waiting for;
                            // late replies after timeout are dropped.
                            if let Some(slot) = replies.get_mut(&corr) {
                                *slot = Some(payload);
                                shard.cv.notify_all();
                            }
                        }
                    }
                })
                .expect("spawn rpc pump")
        };
        RpcClient {
            broker: broker.clone(),
            service_topic: service_topic.to_string(),
            reply_topic,
            pending,
            pump: Some(pump),
            obs: OnceLock::new(),
        }
    }

    /// Wire this client's reply waits into a contention site
    /// (`rpc.reply_wait:<service>`) and its blocked callers into the
    /// profiler. First attachment wins.
    pub fn attach_obs(&self, obs: &Obs) {
        let _ = self.obs.set(RpcClientObs {
            reply_wait: obs
                .contention
                .site(&format!("rpc.reply_wait:{}", self.service_topic)),
            profiler: obs.profile.clone(),
        });
    }

    /// Fire a request and return a handle to await the reply.
    pub fn call(&self, payload: Bytes) -> Result<ReplyHandle<'_>, RpcError> {
        let msg = Message::request(payload, Arc::clone(&self.reply_topic));
        let id = msg.id;
        self.pending.shard(id).replies.lock().insert(id, None);
        if let Err(e) = self.broker.send_message(&self.service_topic, msg) {
            self.pending.shard(id).replies.lock().remove(&id);
            return Err(e.into());
        }
        Ok(ReplyHandle { client: self, id })
    }

    /// Convenience: request and block for the reply.
    pub fn call_wait(&self, payload: Bytes, timeout: Duration) -> Result<Bytes, RpcError> {
        self.call(payload)?.wait_timeout(timeout)
    }

    fn wait(&self, id: MessageId, deadline: Option<Instant>) -> Result<Bytes, RpcError> {
        let _frame = self.obs.get().map(|o| o.profiler.frame("rpc.wait"));
        // An already-arrived reply returns without looking at the
        // clock; only blocked callers are timed.
        let record = |waited_from: Option<Instant>| {
            if let (Some(obs), Some(at)) = (self.obs.get(), waited_from) {
                obs.reply_wait.record(at.elapsed());
            }
        };
        let mut waited_from: Option<Instant> = None;
        let shard = self.pending.shard(id);
        let mut replies = shard.replies.lock();
        loop {
            match replies.get(&id) {
                Some(Some(_)) => {
                    let payload = replies.remove(&id).flatten().expect("checked above");
                    record(waited_from);
                    return Ok(payload);
                }
                Some(None) => {}
                None => {
                    record(waited_from);
                    return Err(RpcError::Canceled);
                }
            }
            if waited_from.is_none() && self.obs.get().is_some() {
                waited_from = Some(Instant::now());
            }
            match deadline {
                Some(d) => {
                    if shard.cv.wait_until(&mut replies, d).timed_out() {
                        replies.remove(&id);
                        record(waited_from);
                        return Err(RpcError::Timeout);
                    }
                }
                None => shard.cv.wait(&mut replies),
            }
        }
    }
}

impl Drop for RpcClient {
    fn drop(&mut self) {
        // Deleting the reply topic unblocks and terminates the pump.
        let _ = self.broker.delete_topic(&self.reply_topic);
        if let Some(h) = self.pump.take() {
            let _ = h.join();
        }
    }
}

impl fmt::Debug for RpcClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RpcClient")
            .field("service_topic", &self.service_topic)
            .field("reply_topic", &self.reply_topic)
            .finish()
    }
}

/// An outstanding request; await the reply with [`ReplyHandle::wait`]
/// or [`ReplyHandle::wait_timeout`].
#[must_use = "a reply handle does nothing unless waited on"]
pub struct ReplyHandle<'a> {
    client: &'a RpcClient,
    id: MessageId,
}

impl ReplyHandle<'_> {
    /// The request's message id (DLHub's async task UUID analogue).
    pub fn id(&self) -> MessageId {
        self.id
    }

    /// Block until the reply arrives.
    pub fn wait(self) -> Result<Bytes, RpcError> {
        self.client.wait(self.id, None)
    }

    /// Block until the reply arrives or `timeout` elapses.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Bytes, RpcError> {
        self.client.wait(self.id, Some(Instant::now() + timeout))
    }

    /// Poll without blocking; `None` while the reply is pending.
    pub fn try_take(&self) -> Result<Option<Bytes>, RpcError> {
        let mut replies = self.client.pending.shard(self.id).replies.lock();
        match replies.get(&self.id) {
            Some(Some(_)) => Ok(replies.remove(&self.id).flatten()),
            Some(None) => Ok(None),
            None => Err(RpcError::Canceled),
        }
    }
}

/// Broker-side metadata about one delivered request, handed to
/// [`RpcServer::serve_one_with_meta`] handlers.
#[derive(Debug, Clone, Copy)]
pub struct RequestInfo {
    /// Time the message sat in the ready queue before this delivery.
    pub queue_wait: Duration,
    /// Delivery attempt number (1 for first delivery).
    pub attempts: u32,
}

/// What a server handler decided to do with a request.
#[derive(Debug)]
pub enum ServeOutcome {
    /// Send this reply and acknowledge the delivery.
    Reply(Bytes),
    /// Walk away mid-request: no reply, no ack. The delivery's lease
    /// expires naturally and the broker redelivers the request — the
    /// crashed-consumer failure mode, used by fault injection to model
    /// a Task Manager dying with a task in hand.
    Abandon,
}

/// Server side of the request/reply pattern: pull one request, run the
/// handler, route the reply back.
pub struct RpcServer {
    broker: Broker,
    service_topic: String,
}

impl RpcServer {
    /// Bind a server to `service_topic`, creating the topic if needed.
    pub fn bind(broker: &Broker, service_topic: &str) -> Self {
        broker.ensure_topic(service_topic);
        RpcServer {
            broker: broker.clone(),
            service_topic: service_topic.to_string(),
        }
    }

    /// Serve exactly one request with `handler`; blocks until one
    /// arrives or `timeout` elapses. Returns `Ok(true)` if a request
    /// was served.
    pub fn serve_one<F>(&self, timeout: Duration, handler: F) -> Result<bool, RpcError>
    where
        F: FnOnce(&Bytes) -> Bytes,
    {
        self.serve_one_with(timeout, |req| ServeOutcome::Reply(handler(req)))
    }

    /// Like [`RpcServer::serve_one`], but the handler can decide to
    /// [`ServeOutcome::Abandon`] the request (no reply, no ack),
    /// leaving the broker lease to expire and the request to be
    /// redelivered to another server. Returns `Ok(true)` whenever a
    /// request was pulled, abandoned or not.
    pub fn serve_one_with<F>(&self, timeout: Duration, handler: F) -> Result<bool, RpcError>
    where
        F: FnOnce(&Bytes) -> ServeOutcome,
    {
        self.serve_one_with_meta(timeout, |payload, _| handler(payload))
    }

    /// Like [`RpcServer::serve_one_with`], but the handler also
    /// receives per-delivery [`RequestInfo`] (broker queue wait,
    /// delivery attempt count) so servers can attribute latency to the
    /// queue hop instead of re-measuring it.
    pub fn serve_one_with_meta<F>(&self, timeout: Duration, handler: F) -> Result<bool, RpcError>
    where
        F: FnOnce(&Bytes, &RequestInfo) -> ServeOutcome,
    {
        let delivery = match self.broker.recv_timeout(&self.service_topic, timeout) {
            Ok(d) => d,
            Err(QueueError::Timeout) => return Ok(false),
            Err(e) => return Err(e.into()),
        };
        let info = RequestInfo {
            queue_wait: delivery.queue_wait,
            attempts: delivery.message.attempts,
        };
        match handler(&delivery.message.payload, &info) {
            ServeOutcome::Reply(reply_payload) => {
                if let Some(reply_topic) = delivery.message.reply_to.clone() {
                    let reply = Message::reply_to(&delivery.message, reply_payload);
                    // The reply topic may already be gone if the client
                    // timed out and dropped; that is not a server error.
                    let _ = self.broker.send_message(&reply_topic, reply);
                }
                delivery.ack();
            }
            // Dropping the delivery unsettled models the crash: the
            // lease stays in flight until it expires.
            ServeOutcome::Abandon => drop(delivery),
        }
        Ok(true)
    }

    /// Serve requests in a loop until the service topic closes.
    pub fn serve_forever<F>(&self, mut handler: F)
    where
        F: FnMut(&Bytes) -> Bytes,
    {
        while self
            .serve_one(Duration::from_millis(100), &mut handler)
            .is_ok()
        {}
    }
}

impl fmt::Debug for RpcServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RpcServer")
            .field("service_topic", &self.service_topic)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::BrokerConfig;
    use std::thread;

    fn echo_server(broker: &Broker, topic: &str) -> thread::JoinHandle<()> {
        let server = RpcServer::bind(broker, topic);
        thread::spawn(move || {
            server.serve_forever(|req| {
                let mut out = b"echo:".to_vec();
                out.extend_from_slice(req);
                Bytes::from(out)
            });
        })
    }

    #[test]
    fn serve_one_with_meta_reports_queue_wait_and_attempts() {
        let broker = Broker::new(BrokerConfig::default());
        let client = RpcClient::connect(&broker, "svc-meta");
        let server = RpcServer::bind(&broker, "svc-meta");
        let _pending = client.call(Bytes::from_static(b"x")).unwrap();
        thread::sleep(Duration::from_millis(5));
        let mut seen = None;
        server
            .serve_one_with_meta(Duration::from_secs(1), |payload, info| {
                seen = Some(*info);
                ServeOutcome::Reply(payload.clone())
            })
            .unwrap();
        let info = seen.expect("handler ran");
        assert_eq!(info.attempts, 1);
        assert!(info.queue_wait >= Duration::from_millis(5), "{info:?}");
    }

    #[test]
    fn round_trip() {
        let broker = Broker::new(BrokerConfig::default());
        let client = RpcClient::connect(&broker, "svc");
        let _server = echo_server(&broker, "svc");
        let reply = client
            .call_wait(Bytes::from_static(b"hi"), Duration::from_secs(2))
            .unwrap();
        assert_eq!(&reply[..], b"echo:hi");
        broker.close_topic("svc").unwrap();
    }

    #[test]
    fn many_outstanding_requests_route_correctly() {
        let broker = Broker::new(BrokerConfig::default());
        let client = RpcClient::connect(&broker, "svc");
        let _server = echo_server(&broker, "svc");
        let handles: Vec<_> = (0..50u32)
            .map(|i| {
                (
                    i,
                    client
                        .call(Bytes::from(i.to_string().into_bytes()))
                        .unwrap(),
                )
            })
            .collect();
        for (i, h) in handles {
            let reply = h.wait_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(reply, Bytes::from(format!("echo:{i}")));
        }
        broker.close_topic("svc").unwrap();
    }

    #[test]
    fn blocked_reply_waits_land_in_the_contention_site() {
        let broker = Broker::new(BrokerConfig::default());
        let client = RpcClient::connect(&broker, "svc");
        let obs = Obs::new();
        client.attach_obs(&obs);
        let _server = echo_server(&broker, "svc");
        client
            .call_wait(Bytes::from_static(b"hi"), Duration::from_secs(2))
            .unwrap();
        // Whether the wait blocked depends on scheduling; force one
        // guaranteed block via a timeout with no reply outstanding.
        let topic_less = RpcClient::connect(&broker, "svc-quiet");
        topic_less.attach_obs(&obs);
        let err = topic_less
            .call_wait(Bytes::from_static(b"x"), Duration::from_millis(30))
            .unwrap_err();
        assert_eq!(err, RpcError::Timeout);
        let site = obs.contention.site("rpc.reply_wait:svc-quiet");
        assert_eq!(site.waits(), 1);
        assert!(site.snapshot().wait_ns >= 25_000_000);
        broker.close_topic("svc").unwrap();
    }

    #[test]
    fn timeout_when_no_server() {
        let broker = Broker::new(BrokerConfig::default());
        let client = RpcClient::connect(&broker, "svc");
        let err = client
            .call_wait(Bytes::from_static(b"x"), Duration::from_millis(30))
            .unwrap_err();
        assert_eq!(err, RpcError::Timeout);
    }

    #[test]
    fn try_take_polls_without_blocking() {
        let broker = Broker::new(BrokerConfig::default());
        let client = RpcClient::connect(&broker, "svc");
        let handle = client.call(Bytes::from_static(b"x")).unwrap();
        assert_eq!(handle.try_take().unwrap(), None);
        let _server = echo_server(&broker, "svc");
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            if let Some(reply) = handle.try_take().unwrap() {
                assert_eq!(&reply[..], b"echo:x");
                break;
            }
            assert!(Instant::now() < deadline, "reply never arrived");
            thread::sleep(Duration::from_millis(1));
        }
        broker.close_topic("svc").unwrap();
    }

    #[test]
    fn serve_one_returns_false_on_idle() {
        let broker = Broker::new(BrokerConfig::default());
        let server = RpcServer::bind(&broker, "svc");
        let served = server
            .serve_one(Duration::from_millis(20), |_| Bytes::new())
            .unwrap();
        assert!(!served);
    }

    #[test]
    fn multiple_servers_share_the_topic() {
        let broker = Broker::new(BrokerConfig::default());
        let client = RpcClient::connect(&broker, "svc");
        let _s1 = echo_server(&broker, "svc");
        let _s2 = echo_server(&broker, "svc");
        for i in 0..20u32 {
            let reply = client
                .call_wait(
                    Bytes::from(i.to_string().into_bytes()),
                    Duration::from_secs(2),
                )
                .unwrap();
            assert_eq!(reply, Bytes::from(format!("echo:{i}")));
        }
        broker.close_topic("svc").unwrap();
    }
}
