//! Hash-sharded MPMC ring segments with a ticket/condvar blocking
//! layer — the storage engine behind every broker topic.
//!
//! A [`ShardedRing`] splits one logical FIFO across `N` independently
//! locked segments. Producers take a round-robin *enqueue ticket* and
//! append to `ticket % N`; consumers take a *claim token* from a
//! lock-free semaphore and scan from their own round-robin ticket, so
//! under concurrency producers and consumers rarely collide on the same
//! segment lock. Used sequentially the tickets advance in lock-step and
//! the ring degrades to an exact FIFO, which is what the broker's
//! ordering tests rely on.
//!
//! The blocking protocol is intentionally small:
//!
//! * `ready` is a claim semaphore: one token per queued item, posted
//!   *after* the item is visible in its segment. Claiming a token
//!   (atomic decrement) therefore guarantees an item exists somewhere;
//!   the claimant scans segments until it finds one.
//! * Parked consumers register in `waiters` before re-checking the
//!   semaphore under the park mutex; posters increment `ready` first
//!   and only take the mutex when `waiters > 0`. Sequential
//!   consistency on both sides makes a missed wake-up impossible, and
//!   the uncontended fast path never touches the mutex.
//!
//! Hot counters ride in [`CachePadded`] slots so producer tickets,
//! consumer tickets and the semaphore do not false-share a cache line.

use dlhub_obs::ContentionSite;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Pads (and aligns) a value to a 64-byte cache line so hot atomics
/// updated by different cores do not false-share.
#[repr(align(64))]
#[derive(Default)]
pub struct CachePadded<T>(pub T);

/// Number of segments per ring. Power of two so shard selection is a
/// mask. Eight segments keep the memory footprint of idle topics small
/// (reply topics are per-client) while letting that many producers and
/// consumers proceed without colliding.
pub const RING_SHARDS: usize = 8;

/// Contention sites for one ring, resolved once at attach time so the
/// wait paths touch plain atomics, never a registry. Unattached rings
/// pay one `OnceLock` load per *slow-path* entry and nothing on fast
/// paths.
pub struct RingObs {
    /// Consumer condvar parks (time actually parked).
    pub park: Arc<ContentionSite>,
    /// Claim-token rescans: a token was held but the first full
    /// segment pass lost its item to a concurrent claimant.
    pub claim: Arc<ContentionSite>,
}

/// A sharded, blocking, multi-producer multi-consumer queue.
///
/// Capacity accounting is cooperative: bounded callers reserve a slot
/// with [`ShardedRing::reserve`] before pushing, unbounded callers use
/// [`ShardedRing::force_reserve`]. [`ShardedRing::len`] reports the
/// reserved-slot count and is exact whenever the ring is quiescent.
pub struct ShardedRing<T> {
    shards: Box<[CachePadded<Mutex<VecDeque<T>>>]>,
    mask: usize,
    /// Round-robin producer ticket.
    enq: CachePadded<AtomicU64>,
    /// Round-robin consumer scan-start ticket.
    deq: CachePadded<AtomicU64>,
    /// Claim semaphore: tokens for items visible in some segment.
    ready: CachePadded<AtomicU64>,
    /// Reserved slots (queued items plus reservations mid-push).
    len: CachePadded<AtomicUsize>,
    /// Consumers currently parked (or about to park) on `park_cv`.
    waiters: CachePadded<AtomicUsize>,
    park: Mutex<()>,
    park_cv: Condvar,
    obs: OnceLock<RingObs>,
}

impl<T> ShardedRing<T> {
    /// A ring with [`RING_SHARDS`] segments.
    pub fn new() -> Self {
        let shards = (0..RING_SHARDS)
            .map(|_| CachePadded(Mutex::new(VecDeque::new())))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ShardedRing {
            shards,
            mask: RING_SHARDS - 1,
            enq: CachePadded(AtomicU64::new(0)),
            deq: CachePadded(AtomicU64::new(0)),
            ready: CachePadded(AtomicU64::new(0)),
            len: CachePadded(AtomicUsize::new(0)),
            waiters: CachePadded(AtomicUsize::new(0)),
            park: Mutex::new(()),
            park_cv: Condvar::new(),
            obs: OnceLock::new(),
        }
    }

    /// Wire this ring's park/claim waits into named contention sites.
    /// First attachment wins; later calls are no-ops.
    pub fn attach_obs(&self, obs: RingObs) {
        let _ = self.obs.set(obs);
    }

    /// Number of segments (shards).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Reserved-slot count: queued items plus in-progress pushes.
    /// Exact at quiescence; at most transiently high under concurrency
    /// (a reservation is counted before its item becomes claimable),
    /// never above a bounded caller's capacity.
    pub fn len(&self) -> usize {
        self.len.0.load(Ordering::SeqCst)
    }

    /// Whether the ring holds no reserved slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reserve a slot against `cap`. Returns `false` when full.
    pub fn reserve(&self, cap: usize) -> bool {
        self.len
            .0
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |l| {
                if l >= cap {
                    None
                } else {
                    Some(l + 1)
                }
            })
            .is_ok()
    }

    /// Reserve a slot unconditionally (unbounded push, redelivery).
    pub fn force_reserve(&self) {
        self.len.0.fetch_add(1, Ordering::SeqCst);
    }

    /// Release a reserved slot without pushing (e.g. an injected drop
    /// discarding the message after reservation).
    pub fn release(&self) {
        self.len.0.fetch_sub(1, Ordering::SeqCst);
    }

    /// Append `item` to the next round-robin segment. The caller must
    /// have reserved a slot. Posts one claim token and wakes a parked
    /// consumer if any.
    pub fn push_back(&self, item: T) {
        let shard = (self.enq.0.fetch_add(1, Ordering::Relaxed) as usize) & self.mask;
        self.shards[shard].0.lock().push_back(item);
        self.post(1);
    }

    /// Re-queue `item` at the *front* of a specific segment — the
    /// redelivery path, which targets the segment the item was claimed
    /// from so per-segment order is preserved. Reserves its own slot.
    pub fn push_front(&self, shard: usize, item: T) {
        self.force_reserve();
        self.shards[shard & self.mask].0.lock().push_front(item);
        self.post(1);
    }

    /// Claim one item if any is queued. Returns the segment index it
    /// was taken from (redelivery affinity) alongside the item.
    pub fn try_claim(&self) -> Option<(usize, T)> {
        // Take a token; without one there is nothing to claim.
        self.ready
            .0
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |r| r.checked_sub(1))
            .ok()?;
        // A token guarantees an item is visible in some segment (items
        // are inserted before their token is posted), but a concurrent
        // claimant may race us to any given segment — rescan until the
        // pigeonhole resolves. In practice the first pass hits.
        let mut contended_since: Option<Instant> = None;
        loop {
            let start = self.deq.0.fetch_add(1, Ordering::Relaxed) as usize;
            for i in 0..self.shards.len() {
                let idx = (start + i) & self.mask;
                if let Some(item) = self.shards[idx].0.lock().pop_front() {
                    self.len.0.fetch_sub(1, Ordering::SeqCst);
                    if let (Some(obs), Some(since)) = (self.obs.get(), contended_since) {
                        obs.claim.record(since.elapsed());
                    }
                    return Some((idx, item));
                }
            }
            // Slow path only: timing starts after the first pass lost
            // the pigeonhole race, so uncontended claims never look at
            // the clock.
            if contended_since.is_none() && self.obs.get().is_some() {
                contended_since = Some(Instant::now());
            }
            std::thread::yield_now();
        }
    }

    /// Post `n` claim tokens and wake parked consumers. Called after
    /// the corresponding items are visible in their segments.
    fn post(&self, n: u64) {
        self.ready.0.fetch_add(n, Ordering::SeqCst);
        if self.waiters.0.load(Ordering::SeqCst) > 0 {
            // Lock-then-notify: any consumer between its semaphore
            // re-check and its wait holds the park mutex, so it either
            // saw our token or is already parked when we notify.
            drop(self.park.lock());
            if n == 1 {
                self.park_cv.notify_one();
            } else {
                self.park_cv.notify_all();
            }
        }
    }

    /// Park the calling consumer until a token is posted, `cancel`
    /// turns true, or `until` passes. Returns `true` if the wait timed
    /// out. Spurious returns are fine — callers loop.
    pub fn park(&self, until: Option<Instant>, cancel: impl Fn() -> bool) -> bool {
        let mut guard = self.park.lock();
        self.waiters.0.fetch_add(1, Ordering::SeqCst);
        // Re-check under the mutex: a token posted or a close flipped
        // after our caller's last look must not strand us.
        if self.ready.0.load(Ordering::SeqCst) > 0 || cancel() {
            self.waiters.0.fetch_sub(1, Ordering::SeqCst);
            return false;
        }
        // Only an actual park is timed: the fast-path returns above
        // never touch the clock.
        let parked_at = self.obs.get().map(|_| Instant::now());
        let timed_out = match until {
            Some(u) => self.park_cv.wait_until(&mut guard, u).timed_out(),
            None => {
                self.park_cv.wait(&mut guard);
                false
            }
        };
        if let (Some(obs), Some(at)) = (self.obs.get(), parked_at) {
            obs.park.record(at.elapsed());
        }
        self.waiters.0.fetch_sub(1, Ordering::SeqCst);
        timed_out
    }

    /// Wake every parked consumer (close/delete paths).
    pub fn wake_all(&self) {
        drop(self.park.lock());
        self.park_cv.notify_all();
    }
}

impl<T> Default for ShardedRing<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::{Arc, Barrier};
    use std::time::Duration;

    #[test]
    fn sequential_use_is_exact_fifo() {
        let ring = ShardedRing::new();
        for i in 0..100u32 {
            ring.force_reserve();
            ring.push_back(i);
        }
        // More items than shards: claims must walk segments in ticket
        // order, not per-segment order.
        for i in 0..100u32 {
            let (_, got) = ring.try_claim().expect("item queued");
            assert_eq!(got, i);
        }
        assert!(ring.try_claim().is_none());
        assert!(ring.is_empty());
    }

    #[test]
    fn push_front_claims_before_older_segment_peers() {
        let ring = ShardedRing::new();
        ring.force_reserve();
        ring.push_back(1u32);
        let (shard, one) = ring.try_claim().unwrap();
        assert_eq!(one, 1);
        // Redelivery lands at the front of its original segment.
        ring.push_front(shard, 1u32);
        assert_eq!(ring.try_claim().unwrap().1, 1);
    }

    #[test]
    fn reserve_respects_capacity() {
        let ring = ShardedRing::<u8>::new();
        assert!(ring.reserve(2));
        assert!(ring.reserve(2));
        assert!(!ring.reserve(2));
        ring.release();
        assert!(ring.reserve(2));
    }

    #[test]
    fn park_wakes_on_post() {
        let ring = Arc::new(ShardedRing::new());
        let r2 = Arc::clone(&ring);
        let t = std::thread::spawn(move || loop {
            if let Some((_, v)) = r2.try_claim() {
                return v;
            }
            r2.park(None, || false);
        });
        std::thread::sleep(Duration::from_millis(20));
        ring.force_reserve();
        ring.push_back(7u32);
        assert_eq!(t.join().unwrap(), 7);
    }

    #[test]
    fn park_times_out() {
        let ring = ShardedRing::<u8>::new();
        let start = Instant::now();
        let timed_out = ring.park(Some(Instant::now() + Duration::from_millis(20)), || false);
        assert!(timed_out);
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn park_respects_cancel() {
        let ring = ShardedRing::<u8>::new();
        // Cancel observed under the park mutex: no wait happens.
        assert!(!ring.park(None, || true));
    }

    /// Loom-style hand-off check: force the racy interleaving where a
    /// consumer decides to park at the same instant a producer posts.
    /// A barrier aligns the two sides at the critical edge on every
    /// iteration; the token protocol must never strand the consumer.
    #[test]
    fn aligned_handoff_never_misses_a_wakeup() {
        for round in 0..200 {
            let ring = Arc::new(ShardedRing::new());
            let gate = Arc::new(Barrier::new(2));
            let done = Arc::new(AtomicBool::new(false));

            let consumer = {
                let ring = Arc::clone(&ring);
                let gate = Arc::clone(&gate);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    gate.wait(); // align with the producer's push
                    loop {
                        if let Some((_, v)) = ring.try_claim() {
                            done.store(true, Ordering::SeqCst);
                            return v;
                        }
                        // Bounded park so a protocol bug fails the
                        // round instead of hanging the suite.
                        ring.park(Some(Instant::now() + Duration::from_millis(200)), || false);
                    }
                })
            };

            gate.wait();
            // Vary the producer's arrival around the consumer's
            // check-then-park window across rounds.
            if round % 3 == 1 {
                std::thread::yield_now();
            }
            ring.force_reserve();
            ring.push_back(round);
            assert_eq!(consumer.join().unwrap(), round);
            assert!(done.load(Ordering::SeqCst));
            assert!(ring.is_empty());
        }
    }

    /// Seeded multi-producer multi-consumer schedules: conservation
    /// across segment boundaries under contention. The seed drives each
    /// thread's yield pattern so different interleavings are explored
    /// run-to-run while any failure is reproducible from its seed.
    #[test]
    fn seeded_schedules_conserve_items_across_shards() {
        for seed in [7u64, 1848, 3141] {
            let ring = Arc::new(ShardedRing::new());
            let produced = 4 * 250usize;
            let claimed = Arc::new(AtomicUsize::new(0));
            let producers: Vec<_> = (0..4u64)
                .map(|p| {
                    let ring = Arc::clone(&ring);
                    std::thread::spawn(move || {
                        let mut state = seed ^ (p + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                        for i in 0..250u64 {
                            state = state
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                            if state % 5 == 0 {
                                std::thread::yield_now();
                            }
                            ring.force_reserve();
                            ring.push_back(p * 250 + i);
                        }
                    })
                })
                .collect();
            let consumers: Vec<_> = (0..4u64)
                .map(|c| {
                    let ring = Arc::clone(&ring);
                    let claimed = Arc::clone(&claimed);
                    std::thread::spawn(move || {
                        let mut state = seed ^ (c + 101).wrapping_mul(0xA076_1D64_78BD_642F);
                        let mut got = Vec::new();
                        let deadline = Instant::now() + Duration::from_secs(20);
                        while claimed.load(Ordering::SeqCst) < produced && Instant::now() < deadline
                        {
                            state = state
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                            if state % 7 == 0 {
                                std::thread::yield_now();
                            }
                            match ring.try_claim() {
                                Some((_, v)) => {
                                    got.push(v);
                                    claimed.fetch_add(1, Ordering::SeqCst);
                                }
                                None => {
                                    ring.park(
                                        Some(Instant::now() + Duration::from_millis(100)),
                                        || false,
                                    );
                                }
                            }
                        }
                        got
                    })
                })
                .collect();
            for p in producers {
                p.join().unwrap();
            }
            let mut all: Vec<u64> = consumers
                .into_iter()
                .flat_map(|c| c.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all.len(), produced, "seed {seed}: items lost or duplicated");
            assert_eq!(all, (0..produced as u64).collect::<Vec<_>>(), "seed {seed}");
            assert!(ring.is_empty(), "seed {seed}: slots leaked");
        }
    }
}
