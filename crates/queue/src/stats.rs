//! Per-topic delivery statistics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Counters and queue-wait accounting for a topic.
///
/// `mean_wait` is the average time messages spent in the ready queue
/// before being leased — the broker component of DLHub's "request time"
/// measurement point (§V-A).
///
/// This is a point-in-time *snapshot*: the broker maintains the live
/// counters as relaxed atomics ([`AtomicTopicStats`]) so
/// `Broker::stats` never takes a topic lock, and materializes one of
/// these on demand.
#[derive(Debug, Clone, Default)]
pub struct TopicStats {
    /// Messages accepted by `send`/`try_send`.
    pub enqueued: u64,
    /// Lease grants (includes redeliveries).
    pub delivered: u64,
    /// Successful acknowledgements.
    pub acked: u64,
    /// Requeues due to nack or lease expiry.
    pub redelivered: u64,
    /// Messages moved to the dead-letter queue.
    pub dead_lettered: u64,
    /// Sends discarded by fault injection: the sender saw success but
    /// the message never reached the ready queue.
    pub dropped: u64,
    total_wait_nanos: u128,
    wait_samples: u64,
}

impl TopicStats {
    /// Record one ready-queue wait sample.
    #[cfg(test)]
    pub(crate) fn record_wait(&mut self, wait: Duration) {
        self.total_wait_nanos += wait.as_nanos();
        self.wait_samples += 1;
    }

    /// Mean time spent in the ready queue before lease.
    pub fn mean_wait(&self) -> Duration {
        if self.wait_samples == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos((self.total_wait_nanos / self.wait_samples as u128) as u64)
    }

    /// Messages currently unaccounted for (enqueued but neither acked
    /// nor dead-lettered). Useful as a liveness check in tests.
    /// Injection-dropped messages never entered the queue, so they are
    /// not outstanding.
    pub fn outstanding(&self) -> u64 {
        self.enqueued
            .saturating_sub(self.acked + self.dead_lettered)
    }
}

/// Live topic counters, updated with relaxed atomics on the broker's
/// hot paths and read lock-free by `Broker::stats`.
///
/// Relaxed ordering is sufficient: each counter is independently
/// monotonic, and every reader that asserts exact totals first
/// quiesces the topic (joins its producers/consumers or polls
/// [`TopicStats::outstanding`] to zero), which synchronizes the loads.
#[derive(Debug, Default)]
pub(crate) struct AtomicTopicStats {
    pub enqueued: AtomicU64,
    pub delivered: AtomicU64,
    pub acked: AtomicU64,
    pub redelivered: AtomicU64,
    pub dead_lettered: AtomicU64,
    pub dropped: AtomicU64,
    total_wait_nanos: AtomicU64,
    wait_samples: AtomicU64,
}

impl AtomicTopicStats {
    /// Record one ready-queue wait sample.
    pub fn record_wait(&self, wait: Duration) {
        self.total_wait_nanos
            .fetch_add(wait.as_nanos() as u64, Ordering::Relaxed);
        self.wait_samples.fetch_add(1, Ordering::Relaxed);
    }

    /// Materialize a [`TopicStats`] snapshot without locking.
    pub fn snapshot(&self) -> TopicStats {
        TopicStats {
            enqueued: self.enqueued.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            acked: self.acked.load(Ordering::Relaxed),
            redelivered: self.redelivered.load(Ordering::Relaxed),
            dead_lettered: self.dead_lettered.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            total_wait_nanos: self.total_wait_nanos.load(Ordering::Relaxed) as u128,
            wait_samples: self.wait_samples.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_wait_of_empty_stats_is_zero() {
        assert_eq!(TopicStats::default().mean_wait(), Duration::ZERO);
    }

    #[test]
    fn mean_wait_averages_samples() {
        let mut s = TopicStats::default();
        s.record_wait(Duration::from_millis(10));
        s.record_wait(Duration::from_millis(30));
        assert_eq!(s.mean_wait(), Duration::from_millis(20));
    }

    #[test]
    fn outstanding_accounts_for_acks_and_dead_letters() {
        let s = TopicStats {
            enqueued: 10,
            acked: 6,
            dead_lettered: 1,
            ..TopicStats::default()
        };
        assert_eq!(s.outstanding(), 3);
    }

    #[test]
    fn atomic_stats_snapshot_round_trips() {
        let live = AtomicTopicStats::default();
        live.enqueued.fetch_add(4, Ordering::Relaxed);
        live.delivered.fetch_add(3, Ordering::Relaxed);
        live.acked.fetch_add(2, Ordering::Relaxed);
        live.record_wait(Duration::from_millis(6));
        live.record_wait(Duration::from_millis(10));
        let snap = live.snapshot();
        assert_eq!(snap.enqueued, 4);
        assert_eq!(snap.delivered, 3);
        assert_eq!(snap.acked, 2);
        assert_eq!(snap.outstanding(), 2);
        assert_eq!(snap.mean_wait(), Duration::from_millis(8));
    }
}
