//! Per-topic delivery statistics.

use std::time::Duration;

/// Counters and queue-wait accounting for a topic.
///
/// `mean_wait` is the average time messages spent in the ready queue
/// before being leased — the broker component of DLHub's "request time"
/// measurement point (§V-A).
#[derive(Debug, Clone, Default)]
pub struct TopicStats {
    /// Messages accepted by `send`/`try_send`.
    pub enqueued: u64,
    /// Lease grants (includes redeliveries).
    pub delivered: u64,
    /// Successful acknowledgements.
    pub acked: u64,
    /// Requeues due to nack or lease expiry.
    pub redelivered: u64,
    /// Messages moved to the dead-letter queue.
    pub dead_lettered: u64,
    /// Sends discarded by fault injection: the sender saw success but
    /// the message never reached the ready queue.
    pub dropped: u64,
    total_wait_nanos: u128,
    wait_samples: u64,
}

impl TopicStats {
    /// Record one ready-queue wait sample.
    pub(crate) fn record_wait(&mut self, wait: Duration) {
        self.total_wait_nanos += wait.as_nanos();
        self.wait_samples += 1;
    }

    /// Mean time spent in the ready queue before lease.
    pub fn mean_wait(&self) -> Duration {
        if self.wait_samples == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos((self.total_wait_nanos / self.wait_samples as u128) as u64)
    }

    /// Messages currently unaccounted for (enqueued but neither acked
    /// nor dead-lettered). Useful as a liveness check in tests.
    /// Injection-dropped messages never entered the queue, so they are
    /// not outstanding.
    pub fn outstanding(&self) -> u64 {
        self.enqueued
            .saturating_sub(self.acked + self.dead_lettered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_wait_of_empty_stats_is_zero() {
        assert_eq!(TopicStats::default().mean_wait(), Duration::ZERO);
    }

    #[test]
    fn mean_wait_averages_samples() {
        let mut s = TopicStats::default();
        s.record_wait(Duration::from_millis(10));
        s.record_wait(Duration::from_millis(30));
        assert_eq!(s.mean_wait(), Duration::from_millis(20));
    }

    #[test]
    fn outstanding_accounts_for_acks_and_dead_letters() {
        let s = TopicStats {
            enqueued: 10,
            acked: 6,
            dead_lettered: 1,
            ..TopicStats::default()
        };
        assert_eq!(s.outstanding(), 3);
    }
}
