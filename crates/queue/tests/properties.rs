//! Property-based tests of the broker's delivery invariants.

use bytes::Bytes;
use dlhub_queue::fault::{site, FaultKind, FaultPlan, FaultSpec};
use dlhub_queue::{Broker, BrokerConfig, TopicConfig};
use proptest::prelude::*;
use std::time::{Duration, Instant};

/// Operations the fuzzer interleaves.
#[derive(Debug, Clone)]
enum Op {
    Send(u8),
    RecvAck,
    RecvNack,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::Send),
        Just(Op::RecvAck),
        Just(Op::RecvNack),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation: every message is exactly one of
    /// {ready, in-flight, acked, dead-lettered} — no message is ever
    /// lost or duplicated across any interleaving of operations.
    #[test]
    fn messages_are_conserved(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let broker = Broker::new(BrokerConfig::default());
        broker
            .create_topic_with(
                "t",
                TopicConfig {
                    max_attempts: 3,
                    ..TopicConfig::default()
                },
            )
            .unwrap();
        let mut sent = 0u64;
        let mut acked = 0u64;
        for op in &ops {
            match op {
                Op::Send(b) => {
                    broker.send("t", Bytes::copy_from_slice(&[*b])).unwrap();
                    sent += 1;
                }
                Op::RecvAck => {
                    if let Ok(Some(d)) = broker.try_recv("t") {
                        d.ack();
                        acked += 1;
                    }
                }
                Op::RecvNack => {
                    if let Ok(Some(d)) = broker.try_recv("t") {
                        d.nack();
                    }
                }
            }
        }
        let ready = broker.depth("t").unwrap() as u64;
        let in_flight = broker.in_flight("t").unwrap() as u64;
        let dead = broker.take_dead_letters("t").unwrap().len() as u64;
        prop_assert_eq!(sent, acked + ready + in_flight + dead);
        let stats = broker.stats("t").unwrap();
        prop_assert_eq!(stats.enqueued, sent);
        prop_assert_eq!(stats.acked, acked);
    }

    /// Single-consumer FIFO: acked payloads come out in send order
    /// when nothing is nacked.
    #[test]
    fn fifo_order_with_single_consumer(payloads in proptest::collection::vec(any::<u8>(), 1..40)) {
        let broker = Broker::new(BrokerConfig::default());
        broker.create_topic("t").unwrap();
        for p in &payloads {
            broker.send("t", Bytes::copy_from_slice(&[*p])).unwrap();
        }
        let mut received = Vec::new();
        while let Ok(Some(d)) = broker.try_recv("t") {
            received.push(d.message.payload[0]);
            d.ack();
        }
        prop_assert_eq!(received, payloads);
    }

    /// Bounded topics never exceed their capacity.
    #[test]
    fn capacity_is_never_exceeded(
        cap in 1usize..8,
        sends in 1usize..30,
    ) {
        let broker = Broker::new(BrokerConfig::default());
        broker
            .create_topic_with(
                "t",
                TopicConfig {
                    capacity: Some(cap),
                    ..TopicConfig::default()
                },
            )
            .unwrap();
        let mut accepted = 0;
        for _ in 0..sends {
            if broker.try_send("t", Bytes::new()).is_ok() {
                accepted += 1;
            }
            prop_assert!(broker.depth("t").unwrap() <= cap);
        }
        prop_assert_eq!(accepted.min(cap), broker.depth("t").unwrap());
    }

    /// Fault injection never breaks delivery accounting: under seeded
    /// send-drops and recv-abandons, every published message is either
    /// delivered exactly once or reported dropped in the topic stats —
    /// never duplicated, never silently lost.
    #[test]
    fn injected_drops_are_exactly_once_or_reported(
        seed in any::<u64>(),
        count in 1usize..40,
        drop_p in 0.0f64..=1.0,
    ) {
        let faults = FaultPlan::seeded(seed)
            .inject(
                site::BROKER_SEND,
                FaultSpec::new(FaultKind::Drop).probability(drop_p),
            )
            .inject(
                site::BROKER_RECV,
                FaultSpec::new(FaultKind::Drop).probability(0.2).max(10),
            )
            .build();
        let broker = Broker::new(BrokerConfig {
            faults,
            ..BrokerConfig::default()
        });
        broker
            .create_topic_with(
                "t",
                TopicConfig {
                    // Short lease so abandoned receives redeliver
                    // inside the test; high max_attempts so abandons
                    // never dead-letter.
                    lease: Duration::from_millis(10),
                    max_attempts: 1000,
                    ..TopicConfig::default()
                },
            )
            .unwrap();
        for i in 0..count {
            // A dropped send still returns Ok: the loss must be
            // visible in the stats, not the API.
            broker
                .send("t", Bytes::copy_from_slice(&(i as u16).to_le_bytes()))
                .unwrap();
        }
        let accepted = broker.stats("t").unwrap().enqueued;
        prop_assert_eq!(
            accepted + broker.stats("t").unwrap().dropped,
            count as u64,
            "every send is accounted enqueued-or-dropped"
        );
        // Drain: abandoned receives only delay delivery past one lease,
        // so everything accepted must surface within the watchdog.
        let mut received = Vec::new();
        let watchdog = Instant::now() + Duration::from_secs(5);
        while (received.len() as u64) < accepted {
            prop_assert!(Instant::now() < watchdog, "accepted messages never drained");
            if let Ok(d) = broker.recv_timeout("t", Duration::from_millis(50)) {
                let mut buf = [0u8; 2];
                buf.copy_from_slice(&d.message.payload[..2]);
                received.push(u16::from_le_bytes(buf));
                d.ack();
            }
        }
        let mut unique = received.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(unique.len(), received.len(), "a message was duplicated");
        let stats = broker.stats("t").unwrap();
        prop_assert_eq!(stats.acked, accepted);
        prop_assert_eq!(stats.outstanding(), 0);
    }
}

/// Deterministic per-seed schedules over the sharded rings: the same
/// seed must produce a byte-identical event trace (message payloads in
/// delivery order) on every run, and every schedule must conserve the
/// ledger — sends are enqueued-or-dropped, drains ack everything
/// accepted, nothing crosses a shard boundary into oblivion.
#[test]
fn seeded_schedules_are_byte_identical_and_conserve() {
    fn run(seed: u64) -> Vec<u8> {
        let faults = FaultPlan::seeded(seed)
            .inject(
                site::BROKER_SEND,
                FaultSpec::new(FaultKind::Drop).probability(0.1).max(20),
            )
            .build();
        let broker = Broker::new(BrokerConfig {
            faults,
            ..BrokerConfig::default()
        });
        broker
            .create_topic_with(
                "t",
                TopicConfig {
                    max_attempts: 64,
                    ..TopicConfig::default()
                },
            )
            .unwrap();
        // xorshift op schedule: fully determined by the seed.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut trace = Vec::new();
        for _ in 0..300 {
            match next() % 4 {
                0 | 1 => {
                    broker
                        .send("t", Bytes::copy_from_slice(&[next() as u8]))
                        .unwrap();
                }
                2 => {
                    if let Ok(Some(d)) = broker.try_recv("t") {
                        trace.push(d.message.payload[0]);
                        d.ack();
                    }
                }
                _ => {
                    if let Ok(Some(d)) = broker.try_recv("t") {
                        d.nack();
                    }
                }
            }
        }
        // Drain the remainder; at-least-once with generous attempts
        // means everything accepted must surface.
        while let Ok(Some(d)) = broker.try_recv("t") {
            trace.push(d.message.payload[0]);
            d.ack();
        }
        let stats = broker.stats("t").unwrap();
        assert_eq!(
            stats.acked,
            trace.len() as u64,
            "seed {seed}: acks vs trace"
        );
        assert_eq!(stats.enqueued, stats.acked, "seed {seed}: ledger conserved");
        assert_eq!(stats.outstanding(), 0, "seed {seed}: nothing stranded");
        trace
    }
    for seed in [7u64, 1848, 3141] {
        assert_eq!(
            run(seed),
            run(seed),
            "seed {seed}: schedule not byte-identical"
        );
    }
}

/// A bounded topic narrower than the shard count forces every producer
/// through the reserved-slot space protocol while consumers drain from
/// all shards: no message may be lost or double-counted across the
/// shard boundaries.
#[test]
fn bounded_cross_shard_handoff_loses_nothing() {
    let broker = Broker::new(BrokerConfig::default());
    broker
        .create_topic_with(
            "t",
            TopicConfig {
                capacity: Some(4),
                ..TopicConfig::default()
            },
        )
        .unwrap();
    const PRODUCERS: u32 = 4;
    const PER_PRODUCER: u32 = 100;
    let mut producers = Vec::new();
    for p in 0..PRODUCERS {
        let b = broker.clone();
        producers.push(std::thread::spawn(move || {
            for i in 0..PER_PRODUCER {
                let tag = p * PER_PRODUCER + i;
                // Blocking send: parks on the space condvar whenever
                // the 4-slot topic is full.
                b.send("t", Bytes::copy_from_slice(&tag.to_le_bytes()))
                    .unwrap();
            }
        }));
    }
    let mut consumers = Vec::new();
    for _ in 0..4 {
        let b = broker.clone();
        consumers.push(std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(d) = b.recv_timeout("t", Duration::from_millis(300)) {
                let mut buf = [0u8; 4];
                buf.copy_from_slice(&d.message.payload[..4]);
                got.push(u32::from_le_bytes(buf));
                d.ack();
            }
            got
        }));
    }
    for p in producers {
        p.join().unwrap();
    }
    let mut all: Vec<u32> = consumers
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    all.sort_unstable();
    assert_eq!(all, (0..PRODUCERS * PER_PRODUCER).collect::<Vec<_>>());
    let stats = broker.stats("t").unwrap();
    assert_eq!(stats.enqueued, (PRODUCERS * PER_PRODUCER) as u64);
    assert_eq!(stats.acked, stats.enqueued);
    assert_eq!(stats.outstanding(), 0);
}

#[test]
fn contended_broker_under_lease_churn_loses_nothing() {
    // Stress: tiny leases force redeliveries while consumers race.
    let broker = Broker::new(BrokerConfig::default());
    broker
        .create_topic_with(
            "t",
            TopicConfig {
                lease: Duration::from_millis(5),
                max_attempts: 100,
                ..TopicConfig::default()
            },
        )
        .unwrap();
    let total = 200u32;
    for i in 0..total {
        broker
            .send("t", Bytes::copy_from_slice(&i.to_le_bytes()))
            .unwrap();
    }
    let mut handles = Vec::new();
    for _ in 0..4 {
        let b = broker.clone();
        handles.push(std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(d) = b.recv_timeout("t", Duration::from_millis(200)) {
                // Occasionally stall past the lease to force
                // redelivery to a peer.
                if d.message.payload[0] % 13 == 0 && d.message.attempts == 1 {
                    std::thread::sleep(Duration::from_millis(8));
                }
                let mut buf = [0u8; 4];
                buf.copy_from_slice(&d.message.payload[..4]);
                got.push(u32::from_le_bytes(buf));
                d.ack();
            }
            got
        }));
    }
    let mut all: Vec<u32> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    all.sort_unstable();
    all.dedup(); // at-least-once: duplicates are legal, loss is not
    assert_eq!(all, (0..total).collect::<Vec<_>>());
}
