//! Indexed documents.

use serde_json::Value;

/// Document identifier (the DLHub servable identifier
/// `owner/model-name` in practice).
pub type DocId = String;

/// A document to index: an id, a JSON metadata body, and the
/// visibility principals that may see it.
///
/// Principals are opaque strings; DLHub maps them from Globus Auth
/// identities (`"id-42"`), groups (`"group:candle"`), or the special
/// `"public"` principal.
#[derive(Debug, Clone)]
pub struct Document {
    /// Unique id; upserting the same id replaces the document.
    pub id: DocId,
    /// Arbitrary JSON metadata. Nested objects are flattened with
    /// dotted paths (`"benchmark.accuracy"`), arrays index each
    /// element under the same path.
    pub body: Value,
    /// Visibility principals. A caller sees the document iff the
    /// intersection of their principals with this set is non-empty.
    pub visible_to: Vec<String>,
}

impl Document {
    /// Construct a document.
    pub fn new(id: impl Into<DocId>, body: Value, visible_to: Vec<String>) -> Self {
        Document {
            id: id.into(),
            body,
            visible_to,
        }
    }

    /// Flatten the JSON body into `(dotted_path, leaf)` pairs.
    pub fn flat_fields(&self) -> Vec<(String, Value)> {
        let mut out = Vec::new();
        flatten("", &self.body, &mut out);
        out
    }
}

fn flatten(prefix: &str, value: &Value, out: &mut Vec<(String, Value)>) {
    match value {
        Value::Object(map) => {
            for (k, v) in map {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(&path, v, out);
            }
        }
        Value::Array(items) => {
            for item in items {
                flatten(prefix, item, out);
            }
        }
        leaf => out.push((prefix.to_string(), leaf.clone())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn flattens_nested_objects() {
        let d = Document::new("x", json!({"a": {"b": 1, "c": "two"}, "d": true}), vec![]);
        let mut fields = d.flat_fields();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(
            fields,
            vec![
                ("a.b".to_string(), json!(1)),
                ("a.c".to_string(), json!("two")),
                ("d".to_string(), json!(true)),
            ]
        );
    }

    #[test]
    fn arrays_flatten_to_repeated_paths() {
        let d = Document::new("x", json!({"tags": ["ml", "science"]}), vec![]);
        let fields = d.flat_fields();
        assert_eq!(
            fields,
            vec![
                ("tags".to_string(), json!("ml")),
                ("tags".to_string(), json!("science")),
            ]
        );
    }

    #[test]
    fn scalar_body_flattens_to_empty_path() {
        let d = Document::new("x", json!("just text"), vec![]);
        assert_eq!(d.flat_fields(), vec![(String::new(), json!("just text"))]);
    }
}
