//! The inverted index and query evaluator.

use crate::document::{DocId, Document};
use crate::query::Query;
use crate::tokenize::{tokenize, unique_tokens};
use parking_lot::RwLock;
use serde_json::Value;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// Errors from index operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchError {
    /// Document ids must be non-empty.
    EmptyId,
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::EmptyId => write!(f, "document id must be non-empty"),
        }
    }
}

impl std::error::Error for SearchError {}

/// One scored result.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// Matching document id.
    pub id: DocId,
    /// TF-IDF relevance (1.0 for filter-style queries).
    pub score: f64,
    /// The stored document body.
    pub body: Value,
}

/// Facet counts: `field -> value -> count` across the result set.
pub type Facets = HashMap<String, BTreeMap<String, usize>>;

/// Query response: ranked hits plus optional facets.
#[derive(Debug, Clone, Default)]
pub struct SearchResults {
    /// Hits ordered by descending score, ties broken by id. May be a
    /// page of the full result set (see [`Index::search_paged`]).
    pub hits: Vec<SearchHit>,
    /// Facet counts if requested via [`Index::search_faceted`];
    /// always computed over the *full* visible result set, not the
    /// returned page.
    pub facets: Facets,
    /// Total visible matches before pagination.
    pub total: usize,
}

struct Stored {
    doc: Document,
    /// token -> term frequency over the whole document.
    term_freq: HashMap<String, usize>,
    /// field -> tokens appearing in that field.
    field_tokens: HashMap<String, HashSet<String>>,
    /// field -> numeric values.
    numbers: HashMap<String, Vec<f64>>,
    /// field -> raw string values (for facets / exact value listing).
    strings: HashMap<String, Vec<String>>,
}

#[derive(Default)]
struct State {
    docs: HashMap<DocId, Stored>,
    /// Global inverted index: token -> doc ids.
    postings: HashMap<String, HashSet<DocId>>,
}

/// Thread-safe search index; cheap to clone.
#[derive(Clone, Default)]
pub struct Index {
    state: Arc<RwLock<State>>,
}

impl Index {
    /// Create an empty index.
    pub fn new() -> Self {
        Index::default()
    }

    /// Insert or replace a document.
    pub fn upsert(&self, doc: Document) -> Result<(), SearchError> {
        if doc.id.is_empty() {
            return Err(SearchError::EmptyId);
        }
        let mut stored = Stored {
            doc: doc.clone(),
            term_freq: HashMap::new(),
            field_tokens: HashMap::new(),
            numbers: HashMap::new(),
            strings: HashMap::new(),
        };
        for (path, leaf) in doc.flat_fields() {
            match leaf {
                Value::String(s) => {
                    for token in tokenize(&s) {
                        *stored.term_freq.entry(token.clone()).or_insert(0) += 1;
                        stored
                            .field_tokens
                            .entry(path.clone())
                            .or_default()
                            .insert(token);
                    }
                    stored.strings.entry(path.clone()).or_default().push(s);
                }
                Value::Number(n) => {
                    if let Some(v) = n.as_f64() {
                        stored.numbers.entry(path.clone()).or_default().push(v);
                    }
                }
                Value::Bool(b) => {
                    let token = b.to_string();
                    *stored.term_freq.entry(token.clone()).or_insert(0) += 1;
                    stored
                        .field_tokens
                        .entry(path.clone())
                        .or_default()
                        .insert(token.clone());
                    stored.strings.entry(path.clone()).or_default().push(token);
                }
                Value::Null => {}
                _ => unreachable!("flat_fields yields only leaves"),
            }
        }
        let mut st = self.state.write();
        if st.docs.contains_key(&doc.id) {
            Self::remove_postings(&mut st, &doc.id);
        }
        for token in stored.term_freq.keys() {
            st.postings
                .entry(token.clone())
                .or_default()
                .insert(doc.id.clone());
        }
        st.docs.insert(doc.id.clone(), stored);
        Ok(())
    }

    /// Delete a document; returns true if it existed.
    pub fn delete(&self, id: &str) -> bool {
        let mut st = self.state.write();
        if st.docs.contains_key(id) {
            Self::remove_postings(&mut st, id);
            st.docs.remove(id);
            true
        } else {
            false
        }
    }

    fn remove_postings(st: &mut State, id: &str) {
        let tokens: Vec<String> = st
            .docs
            .get(id)
            .map(|s| s.term_freq.keys().cloned().collect())
            .unwrap_or_default();
        for token in tokens {
            if let Some(set) = st.postings.get_mut(&token) {
                set.remove(id);
                if set.is_empty() {
                    st.postings.remove(&token);
                }
            }
        }
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.state.read().docs.len()
    }

    /// True when no documents are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch a document body if it exists *and* is visible to the
    /// caller's principals.
    pub fn get(&self, id: &str, principals: &[String]) -> Option<Value> {
        let st = self.state.read();
        let stored = st.docs.get(id)?;
        if visible(&stored.doc, principals) {
            Some(stored.doc.body.clone())
        } else {
            None
        }
    }

    /// Evaluate `query` for a caller holding `principals`.
    pub fn search(&self, query: &Query, principals: &[String]) -> SearchResults {
        self.search_faceted(query, principals, &[])
    }

    /// Evaluate `query` and compute facet counts for `facet_fields`
    /// across the (visible) result set.
    pub fn search_faceted(
        &self,
        query: &Query,
        principals: &[String],
        facet_fields: &[&str],
    ) -> SearchResults {
        let st = self.state.read();
        let scores = eval(&st, query);
        let mut hits: Vec<SearchHit> = scores
            .into_iter()
            .filter_map(|(id, score)| {
                let stored = st.docs.get(&id)?;
                if visible(&stored.doc, principals) {
                    Some(SearchHit {
                        id,
                        score,
                        body: stored.doc.body.clone(),
                    })
                } else {
                    None
                }
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.id.cmp(&b.id))
        });
        let mut facets: Facets = HashMap::new();
        for field in facet_fields {
            let counts = facets.entry(field.to_string()).or_default();
            for hit in &hits {
                if let Some(stored) = st.docs.get(&hit.id) {
                    if let Some(values) = stored.strings.get(*field) {
                        for v in values {
                            *counts.entry(v.clone()).or_insert(0) += 1;
                        }
                    }
                }
            }
        }
        let total = hits.len();
        SearchResults {
            hits,
            facets,
            total,
        }
    }

    /// Paged search (Elasticsearch `from`/`size`): hits are the
    /// requested window of the ranked, visibility-filtered result
    /// set; `total` reports the full match count.
    pub fn search_paged(
        &self,
        query: &Query,
        principals: &[String],
        offset: usize,
        limit: usize,
    ) -> SearchResults {
        let mut results = self.search(query, principals);
        let end = offset.saturating_add(limit).min(results.hits.len());
        let start = offset.min(results.hits.len());
        results.hits = results.hits[start..end].to_vec();
        results
    }
}

fn visible(doc: &Document, principals: &[String]) -> bool {
    doc.visible_to
        .iter()
        .any(|p| p == "public" || principals.iter().any(|q| q == p))
}

/// Evaluate a query to `doc id -> score`, ignoring visibility (applied
/// by the caller afterwards so boolean semantics stay simple).
fn eval(st: &State, query: &Query) -> HashMap<DocId, f64> {
    match query {
        Query::All => st.docs.keys().map(|id| (id.clone(), 1.0)).collect(),
        Query::FreeText(text) => {
            let n_docs = st.docs.len().max(1) as f64;
            let mut scores: HashMap<DocId, f64> = HashMap::new();
            for term in unique_tokens(text) {
                if let Some(ids) = st.postings.get(&term) {
                    let idf = (n_docs / ids.len() as f64).ln() + 1.0;
                    for id in ids {
                        let tf = st
                            .docs
                            .get(id)
                            .and_then(|d| d.term_freq.get(&term))
                            .copied()
                            .unwrap_or(0) as f64;
                        *scores.entry(id.clone()).or_insert(0.0) += tf * idf;
                    }
                }
            }
            scores
        }
        Query::Match { field, value } => {
            let terms = unique_tokens(value);
            if terms.is_empty() {
                return HashMap::new();
            }
            st.docs
                .iter()
                .filter(|(_, stored)| {
                    stored
                        .field_tokens
                        .get(field)
                        .is_some_and(|toks| terms.iter().all(|t| toks.contains(t)))
                })
                .map(|(id, _)| (id.clone(), 1.0))
                .collect()
        }
        Query::Prefix { field, prefix } => st
            .docs
            .iter()
            .filter(|(_, stored)| match field {
                Some(f) => stored
                    .field_tokens
                    .get(f)
                    .is_some_and(|toks| toks.iter().any(|t| t.starts_with(prefix.as_str()))),
                None => stored
                    .term_freq
                    .keys()
                    .any(|t| t.starts_with(prefix.as_str())),
            })
            .map(|(id, _)| (id.clone(), 1.0))
            .collect(),
        Query::Range { field, min, max } => st
            .docs
            .iter()
            .filter(|(_, stored)| {
                stored.numbers.get(field).is_some_and(|vals| {
                    vals.iter()
                        .any(|v| min.is_none_or(|m| *v >= m) && max.is_none_or(|m| *v <= m))
                })
            })
            .map(|(id, _)| (id.clone(), 1.0))
            .collect(),
        Query::And(queries) => {
            let mut iter = queries.iter();
            let Some(first) = iter.next() else {
                return HashMap::new();
            };
            let mut acc = eval(st, first);
            for q in iter {
                let next = eval(st, q);
                acc.retain(|id, _| next.contains_key(id));
                for (id, score) in acc.iter_mut() {
                    *score += next.get(id).copied().unwrap_or(0.0);
                }
            }
            acc
        }
        Query::Or(queries) => {
            let mut acc: HashMap<DocId, f64> = HashMap::new();
            for q in queries {
                for (id, score) in eval(st, q) {
                    let entry = acc.entry(id).or_insert(0.0);
                    *entry = entry.max(score);
                }
            }
            acc
        }
        Query::Not(inner) => {
            let excluded = eval(st, inner);
            st.docs
                .keys()
                .filter(|id| !excluded.contains_key(*id))
                .map(|id| (id.clone(), 1.0))
                .collect()
        }
    }
}

impl fmt::Debug for Index {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Index").field("docs", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn corpus() -> Index {
        let index = Index::new();
        index
            .upsert(Document::new(
                "inception",
                json!({
                    "title": "Inception v3 image classifier",
                    "model_type": "tensorflow",
                    "domain": "vision",
                    "year": 2015,
                    "accuracy": 0.78,
                }),
                vec!["public".into()],
            ))
            .unwrap();
        index
            .upsert(Document::new(
                "cifar10",
                json!({
                    "title": "CIFAR-10 convolutional network",
                    "model_type": "keras",
                    "domain": "vision",
                    "year": 2017,
                    "accuracy": 0.91,
                }),
                vec!["public".into()],
            ))
            .unwrap();
        index
            .upsert(Document::new(
                "matminer-model",
                json!({
                    "title": "Material stability random forest",
                    "model_type": "scikit-learn",
                    "domain": "materials",
                    "year": 2018,
                    "accuracy": 0.85,
                }),
                vec!["public".into()],
            ))
            .unwrap();
        index
            .upsert(Document::new(
                "candle-drug",
                json!({
                    "title": "CANDLE drug response predictor",
                    "model_type": "keras",
                    "domain": "cancer",
                    "year": 2018,
                }),
                vec!["group:candle".into()],
            ))
            .unwrap();
        index
    }

    const PUBLIC: &[String] = &[];

    fn ids(results: &SearchResults) -> Vec<&str> {
        results.hits.iter().map(|h| h.id.as_str()).collect()
    }

    #[test]
    fn free_text_ranks_by_relevance() {
        let index = corpus();
        let r = index.search(&Query::free_text("image classifier"), PUBLIC);
        assert_eq!(ids(&r), vec!["inception"]);
        assert!(r.hits[0].score > 0.0);
    }

    #[test]
    fn free_text_multiple_hits() {
        let index = corpus();
        let r = index.search(&Query::free_text("network forest"), PUBLIC);
        let mut got = ids(&r);
        got.sort();
        assert_eq!(got, vec!["cifar10", "matminer-model"]);
    }

    #[test]
    fn field_match_restricts_to_field() {
        let index = corpus();
        let r = index.search(&Query::field_match("model_type", "keras"), PUBLIC);
        assert_eq!(ids(&r), vec!["cifar10"]); // candle-drug is restricted
                                              // "keras" never appears in titles:
        let r = index.search(&Query::field_match("title", "keras"), PUBLIC);
        assert!(r.hits.is_empty());
    }

    #[test]
    fn prefix_match_partial_words() {
        let index = corpus();
        let r = index.search(&Query::prefix("incep"), PUBLIC);
        assert_eq!(ids(&r), vec!["inception"]);
        let r = index.search(&Query::prefix_in("model_type", "sci"), PUBLIC);
        assert_eq!(ids(&r), vec!["matminer-model"]);
    }

    #[test]
    fn range_queries() {
        let index = corpus();
        let r = index.search(&Query::range("year", Some(2016.0), None), PUBLIC);
        let mut got = ids(&r);
        got.sort();
        assert_eq!(got, vec!["cifar10", "matminer-model"]);
        let r = index.search(&Query::range("accuracy", Some(0.8), Some(0.9)), PUBLIC);
        assert_eq!(ids(&r), vec!["matminer-model"]);
    }

    #[test]
    fn boolean_composition() {
        let index = corpus();
        let q =
            Query::field_match("domain", "vision").and(Query::range("year", Some(2016.0), None));
        assert_eq!(ids(&index.search(&q, PUBLIC)), vec!["cifar10"]);

        let q =
            Query::field_match("domain", "materials").or(Query::field_match("domain", "vision"));
        let r = index.search(&q, PUBLIC);
        let mut got = ids(&r);
        got.sort();
        assert_eq!(got, vec!["cifar10", "inception", "matminer-model"]);

        let q = Query::field_match("domain", "vision").not();
        assert_eq!(ids(&index.search(&q, PUBLIC)), vec!["matminer-model"]);
    }

    #[test]
    fn acl_hides_restricted_documents() {
        let index = corpus();
        // Anonymous caller cannot see the CANDLE model even with All.
        let r = index.search(&Query::All, PUBLIC);
        assert_eq!(r.hits.len(), 3);
        // A CANDLE group member sees it.
        let candle = vec!["group:candle".to_string()];
        let r = index.search(&Query::All, &candle);
        assert_eq!(r.hits.len(), 4);
        // get() enforces the same rule.
        assert!(index.get("candle-drug", PUBLIC).is_none());
        assert!(index.get("candle-drug", &candle).is_some());
    }

    #[test]
    fn facets_count_visible_only() {
        let index = corpus();
        let r = index.search_faceted(&Query::All, PUBLIC, &["model_type"]);
        let counts = &r.facets["model_type"];
        assert_eq!(counts.get("keras"), Some(&1)); // restricted keras doc excluded
        assert_eq!(counts.get("tensorflow"), Some(&1));
        assert_eq!(counts.get("scikit-learn"), Some(&1));
        let candle = vec!["group:candle".to_string()];
        let r = index.search_faceted(&Query::All, &candle, &["model_type"]);
        assert_eq!(r.facets["model_type"].get("keras"), Some(&2));
    }

    #[test]
    fn upsert_replaces_old_tokens() {
        let index = corpus();
        index
            .upsert(Document::new(
                "inception",
                json!({"title": "renamed model"}),
                vec!["public".into()],
            ))
            .unwrap();
        assert!(index
            .search(&Query::free_text("image"), PUBLIC)
            .hits
            .is_empty());
        assert_eq!(
            ids(&index.search(&Query::free_text("renamed"), PUBLIC)),
            vec!["inception"]
        );
        assert_eq!(index.len(), 4);
    }

    #[test]
    fn delete_removes_document() {
        let index = corpus();
        assert!(index.delete("cifar10"));
        assert!(!index.delete("cifar10"));
        assert!(index
            .search(&Query::free_text("cifar"), PUBLIC)
            .hits
            .is_empty());
        assert_eq!(index.len(), 3);
    }

    #[test]
    fn empty_id_rejected() {
        let index = Index::new();
        assert_eq!(
            index.upsert(Document::new("", json!({}), vec![])),
            Err(SearchError::EmptyId)
        );
    }

    #[test]
    fn empty_and_matches_nothing() {
        let index = corpus();
        assert!(index.search(&Query::And(vec![]), PUBLIC).hits.is_empty());
    }

    #[test]
    fn idf_prefers_rare_terms() {
        let index = Index::new();
        for i in 0..10 {
            index
                .upsert(Document::new(
                    format!("common-{i}"),
                    json!({"text": "model"}),
                    vec!["public".into()],
                ))
                .unwrap();
        }
        index
            .upsert(Document::new(
                "rare",
                json!({"text": "model spectroscopy"}),
                vec!["public".into()],
            ))
            .unwrap();
        let r = index.search(&Query::free_text("model spectroscopy"), PUBLIC);
        assert_eq!(r.hits[0].id, "rare");
    }

    #[test]
    fn pagination_windows_the_ranked_results() {
        let index = Index::new();
        for i in 0..25 {
            index
                .upsert(Document::new(
                    format!("doc-{i:02}"),
                    json!({"title": "paged result"}),
                    vec!["public".into()],
                ))
                .unwrap();
        }
        let page1 = index.search_paged(&Query::free_text("paged"), PUBLIC, 0, 10);
        let page2 = index.search_paged(&Query::free_text("paged"), PUBLIC, 10, 10);
        let page3 = index.search_paged(&Query::free_text("paged"), PUBLIC, 20, 10);
        assert_eq!(page1.total, 25);
        assert_eq!(page1.hits.len(), 10);
        assert_eq!(page2.hits.len(), 10);
        assert_eq!(page3.hits.len(), 5);
        // Pages are disjoint and cover everything.
        let mut all: Vec<&str> = page1
            .hits
            .iter()
            .chain(&page2.hits)
            .chain(&page3.hits)
            .map(|h| h.id.as_str())
            .collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 25);
        // Out-of-range pages are empty but still report the total.
        let beyond = index.search_paged(&Query::free_text("paged"), PUBLIC, 100, 10);
        assert!(beyond.hits.is_empty());
        assert_eq!(beyond.total, 25);
    }

    #[test]
    fn bool_values_are_searchable() {
        let index = Index::new();
        index
            .upsert(Document::new(
                "d",
                json!({"servable": true}),
                vec!["public".into()],
            ))
            .unwrap();
        let r = index.search(&Query::field_match("servable", "true"), PUBLIC);
        assert_eq!(r.hits.len(), 1);
    }
}
