#![warn(missing_docs)]

//! # dlhub-search
//!
//! A Globus-Search-like metadata index.
//!
//! When a model is published, DLHub registers its metadata "in a Globus
//! Search index that can be queried … using free text queries, partial
//! matching, range queries, faceted search, and more", with
//! "fine-grained, access-controlled queries" (§IV-A). This crate
//! rebuilds that query surface over an in-memory inverted index:
//!
//! * **Free text** — tokenized, TF-IDF-ranked search over all string
//!   fields.
//! * **Fielded match** — exact token match within one field.
//! * **Partial (prefix) match** — `incep*`-style queries.
//! * **Range queries** — over numeric fields (e.g. publication year,
//!   benchmark accuracy).
//! * **Faceted search** — value counts for a field across the result
//!   set.
//! * **Access control** — every document carries visibility
//!   *principals*; queries are evaluated against the caller's principal
//!   set and never leak restricted documents, not even in facet counts.
//!
//! ```
//! use dlhub_search::{Document, Index, Query};
//! use serde_json::json;
//!
//! let index = Index::new();
//! index.upsert(Document::new(
//!     "model-1",
//!     json!({"title": "Inception v3", "model_type": "tensorflow", "year": 2015}),
//!     vec!["public".into()],
//! )).unwrap();
//! let hits = index.search(&Query::free_text("inception"), &["public".into()]);
//! assert_eq!(hits.hits.len(), 1);
//! ```

pub mod document;
pub mod index;
pub mod query;
pub mod tokenize;

pub use document::{DocId, Document};
pub use index::{Facets, Index, SearchError, SearchHit, SearchResults};
pub use query::Query;
