//! Query AST.

/// A search query. Combinators build the same shapes Globus Search
/// exposes: free text, fielded match, prefix (partial) match, numeric
/// range, and boolean composition.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Match every visible document.
    All,
    /// TF-IDF-ranked free-text search across all string fields.
    FreeText(String),
    /// Exact token match within one field.
    Match {
        /// Dotted field path.
        field: String,
        /// Value to match (tokenized; all tokens must appear in the field).
        value: String,
    },
    /// Prefix (partial) match; `field: None` searches all fields.
    Prefix {
        /// Optional dotted field path restriction.
        field: Option<String>,
        /// Lowercased prefix.
        prefix: String,
    },
    /// Inclusive numeric range over one field. Either bound may be
    /// omitted.
    Range {
        /// Dotted field path.
        field: String,
        /// Lower bound (inclusive).
        min: Option<f64>,
        /// Upper bound (inclusive).
        max: Option<f64>,
    },
    /// All sub-queries must match.
    And(Vec<Query>),
    /// Any sub-query may match.
    Or(Vec<Query>),
    /// Matches visible documents the inner query does not.
    Not(Box<Query>),
}

impl Query {
    /// Free-text query.
    pub fn free_text(text: impl Into<String>) -> Self {
        Query::FreeText(text.into())
    }

    /// Fielded exact-token match.
    pub fn field_match(field: impl Into<String>, value: impl Into<String>) -> Self {
        Query::Match {
            field: field.into(),
            value: value.into(),
        }
    }

    /// Prefix match in a specific field.
    pub fn prefix_in(field: impl Into<String>, prefix: impl Into<String>) -> Self {
        Query::Prefix {
            field: Some(field.into()),
            prefix: prefix.into().to_lowercase(),
        }
    }

    /// Prefix match across all fields.
    pub fn prefix(prefix: impl Into<String>) -> Self {
        Query::Prefix {
            field: None,
            prefix: prefix.into().to_lowercase(),
        }
    }

    /// Inclusive range query.
    pub fn range(field: impl Into<String>, min: Option<f64>, max: Option<f64>) -> Self {
        Query::Range {
            field: field.into(),
            min,
            max,
        }
    }

    /// Conjunction with another query.
    pub fn and(self, other: Query) -> Self {
        match self {
            Query::And(mut qs) => {
                qs.push(other);
                Query::And(qs)
            }
            q => Query::And(vec![q, other]),
        }
    }

    /// Disjunction with another query.
    pub fn or(self, other: Query) -> Self {
        match self {
            Query::Or(mut qs) => {
                qs.push(other);
                Query::Or(qs)
            }
            q => Query::Or(vec![q, other]),
        }
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Query::Not(Box::new(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_flattens() {
        let q = Query::free_text("a")
            .and(Query::free_text("b"))
            .and(Query::free_text("c"));
        match q {
            Query::And(qs) => assert_eq!(qs.len(), 3),
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn or_flattens() {
        let q = Query::free_text("a")
            .or(Query::free_text("b"))
            .or(Query::free_text("c"));
        match q {
            Query::Or(qs) => assert_eq!(qs.len(), 3),
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn prefix_lowercases() {
        match Query::prefix("IncEp") {
            Query::Prefix { prefix, .. } => assert_eq!(prefix, "incep"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
