//! Text analysis: lowercase alphanumeric tokenization.

/// Split `text` into lowercase alphanumeric tokens. Underscores and
/// hyphens are treated as separators so `matminer_featurize` matches a
/// query for `featurize`, matching Elasticsearch's default analyzer
/// closely enough for metadata search.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            current.extend(ch.to_lowercase());
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Tokenize and deduplicate, preserving first-seen order. Used for
/// query terms where duplicates would double-count scores.
pub fn unique_tokens(text: &str) -> Vec<String> {
    let mut seen = std::collections::HashSet::new();
    tokenize(text)
        .into_iter()
        .filter(|t| seen.insert(t.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_lowercases() {
        assert_eq!(
            tokenize("Inception-v3, trained on ImageNet!"),
            vec!["inception", "v3", "trained", "on", "imagenet"]
        );
    }

    #[test]
    fn underscores_separate() {
        assert_eq!(
            tokenize("matminer_featurize"),
            vec!["matminer", "featurize"]
        );
    }

    #[test]
    fn empty_and_symbol_only_yield_nothing() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("--- !!! ---").is_empty());
    }

    #[test]
    fn unicode_is_handled() {
        assert_eq!(tokenize("Müller's Modell"), vec!["müller", "s", "modell"]);
    }

    #[test]
    fn unique_tokens_dedup() {
        assert_eq!(
            unique_tokens("deep deep learning"),
            vec!["deep", "learning"]
        );
    }
}
