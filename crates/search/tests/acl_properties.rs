//! Property tests: the index never leaks restricted documents, under
//! any query shape and any principal set.

use dlhub_search::{Document, Index, Query};
use proptest::prelude::*;
use serde_json::json;

/// A corpus where document i is visible to principal `p{i % 4}` (and
/// every fourth one is public).
fn corpus(n: usize) -> Index {
    let index = Index::new();
    for i in 0..n {
        let visible_to = if i % 4 == 0 {
            vec!["public".to_string()]
        } else {
            vec![format!("p{}", i % 4)]
        };
        index
            .upsert(Document::new(
                format!("doc-{i}"),
                json!({
                    "title": format!("shared term specific{i}"),
                    "year": 2000 + (i as i64 % 20),
                    "owner_group": format!("p{}", i % 4),
                }),
                visible_to,
            ))
            .unwrap();
    }
    index
}

fn query_strategy() -> impl Strategy<Value = Query> {
    prop_oneof![
        Just(Query::All),
        Just(Query::free_text("shared term")),
        Just(Query::prefix("specif")),
        Just(Query::range("year", Some(2005.0), Some(2015.0))),
        Just(Query::free_text("shared").not()),
        Just(Query::All.and(Query::range("year", Some(2000.0), None))),
        Just(Query::free_text("shared").or(Query::prefix("spec"))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the query, a caller only ever sees public documents
    /// plus those shared with one of their principals — including
    /// negated queries, which must not resurrect hidden documents.
    #[test]
    fn no_query_leaks_restricted_documents(
        query in query_strategy(),
        caller_principal in 0usize..6,
    ) {
        let index = corpus(40);
        let principals = vec![format!("p{caller_principal}")];
        let results = index.search(&query, &principals);
        for hit in &results.hits {
            let i: usize = hit.id.strip_prefix("doc-").unwrap().parse().unwrap();
            let visible = i.is_multiple_of(4) || format!("p{}", i % 4) == principals[0];
            prop_assert!(visible, "leaked {} to {:?}", hit.id, principals);
        }
    }

    /// Facet counts are computed over the visible subset only, so
    /// they cannot be used as a side channel to count hidden models.
    #[test]
    fn facets_do_not_leak_counts(caller_principal in 0usize..6) {
        let index = corpus(40);
        let principals = vec![format!("p{caller_principal}")];
        let results = index.search_faceted(&Query::All, &principals, &["owner_group"]);
        let total_faceted: usize = results.facets["owner_group"].values().sum();
        prop_assert_eq!(total_faceted, results.hits.len());
    }

    /// Anonymous callers see exactly the public quarter of the corpus.
    #[test]
    fn anonymous_sees_only_public(n in 4usize..60) {
        let index = corpus(n);
        let results = index.search(&Query::All, &[]);
        prop_assert_eq!(results.hits.len(), n.div_ceil(4));
    }
}
