//! The event-queue simulator core.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

type Action = Box<dyn FnOnce(&mut Sim)>;

struct Scheduled {
    at: SimTime,
    seq: u64,
    action: Action,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Ties broken by schedule order for full determinism.
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

/// A deterministic discrete-event simulator. Events are closures
/// executed in (time, insertion) order; each may schedule further
/// events. Shared simulation state is carried in `Rc<RefCell<…>>`
/// captured by the closures.
#[derive(Default)]
pub struct Sim {
    now: SimTime,
    queue: BinaryHeap<Reverse<Scheduled>>,
    next_seq: u64,
    executed: u64,
}

impl Sim {
    /// New simulator at time zero.
    pub fn new() -> Self {
        Sim::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Schedule `action` at absolute time `at` (clamped to now).
    pub fn schedule_at<F: FnOnce(&mut Sim) + 'static>(&mut self, at: SimTime, action: F) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Reverse(Scheduled {
            at,
            seq,
            action: Box::new(action),
        }));
    }

    /// Schedule `action` after a delay.
    pub fn schedule_in<F: FnOnce(&mut Sim) + 'static>(&mut self, delay: SimTime, action: F) {
        self.schedule_at(self.now + delay, action);
    }

    /// Run until the queue drains. Returns the final time.
    pub fn run(&mut self) -> SimTime {
        while let Some(Reverse(event)) = self.queue.pop() {
            debug_assert!(event.at >= self.now, "time went backwards");
            self.now = event.at;
            self.executed += 1;
            (event.action)(self);
        }
        self.now
    }

    /// Run until `deadline` (events at exactly `deadline` included);
    /// later events stay queued.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.at > deadline {
                break;
            }
            let Reverse(event) = self.queue.pop().expect("peeked");
            self.now = event.at;
            self.executed += 1;
            (event.action)(self);
        }
        self.now = self.now.max(deadline);
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for (at, label) in [(30.0, "c"), (10.0, "a"), (20.0, "b")] {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_millis(at), move |_| {
                log.borrow_mut().push(label);
            });
        }
        let end = sim.run();
        assert_eq!(*log.borrow(), vec!["a", "b", "c"]);
        assert_eq!(end, SimTime::from_millis(30.0));
        assert_eq!(sim.executed(), 3);
    }

    #[test]
    fn ties_run_in_insertion_order() {
        let mut sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for label in 0..5 {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_millis(1.0), move |_| {
                log.borrow_mut().push(label);
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Sim::new();
        let hits = Rc::new(RefCell::new(0u32));
        // A self-rescheduling ticker that stops after 5 ticks.
        fn tick(sim: &mut Sim, hits: Rc<RefCell<u32>>) {
            *hits.borrow_mut() += 1;
            if *hits.borrow() < 5 {
                let h = Rc::clone(&hits);
                sim.schedule_in(SimTime::from_millis(2.0), move |s| tick(s, h));
            }
        }
        let h = Rc::clone(&hits);
        sim.schedule_at(SimTime::ZERO, move |s| tick(s, h));
        let end = sim.run();
        assert_eq!(*hits.borrow(), 5);
        assert_eq!(end, SimTime::from_millis(8.0));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Sim::new();
        let hits = Rc::new(RefCell::new(0u32));
        for at in [1.0, 2.0, 3.0, 4.0] {
            let hits = Rc::clone(&hits);
            sim.schedule_at(SimTime::from_millis(at), move |_| {
                *hits.borrow_mut() += 1;
            });
        }
        sim.run_until(SimTime::from_millis(2.0));
        assert_eq!(*hits.borrow(), 2);
        assert_eq!(sim.now(), SimTime::from_millis(2.0));
        sim.run();
        assert_eq!(*hits.borrow(), 4);
    }

    #[test]
    fn past_schedules_clamp_to_now() {
        let mut sim = Sim::new();
        let ran_at = Rc::new(RefCell::new(SimTime::ZERO));
        {
            let ran_at = Rc::clone(&ran_at);
            sim.schedule_at(SimTime::from_millis(10.0), move |s| {
                let ran_at = Rc::clone(&ran_at);
                // Schedule "in the past"; must run at now, not before.
                s.schedule_at(SimTime::from_millis(1.0), move |s2| {
                    *ran_at.borrow_mut() = s2.now();
                });
            });
        }
        sim.run();
        assert_eq!(*ran_at.borrow(), SimTime::from_millis(10.0));
    }
}
