#![warn(missing_docs)]

//! # dlhub-sim
//!
//! A deterministic discrete-event simulator plus a model of the
//! paper's testbed, used to regenerate the latency figures.
//!
//! The paper's measurements (§V-A) compose three nested timings across
//! a physical deployment we do not have — a Management Service on EC2,
//! a Task Manager on Cooley (20.7 ms RTT to the MS), and servables on
//! the PetrelKube Kubernetes cluster (0.17 ms RTT to the TM):
//!
//! ```text
//! request time    = MS overhead + MS↔TM RTT + invocation time
//! invocation time = TM overhead + TM↔K8s RTT + dispatch + inference
//! inference time  = servable execution
//! ```
//!
//! [`engine::Sim`] is a classic event-queue simulator on a virtual
//! nanosecond clock. [`serving`] builds the serving pipeline on top of
//! it: configurable [`serving::ServingProfile`]s describe each system
//! (where its cache lives, protocol overheads, dispatch costs) and
//! [`testbed`] pins the paper's constants. Service times for each
//! servable are *calibrated from the real Rust kernels* by the bench
//! harness, so the simulated figures inherit genuine compute ratios.

pub mod engine;
pub mod queueing;
pub mod serving;
pub mod testbed;
pub mod time;
pub mod workload;

pub use engine::Sim;
pub use serving::{BatchPolicy, CacheLocation, RequestSample, ServableModel, ServingProfile};
pub use time::SimTime;
