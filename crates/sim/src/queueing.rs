//! A FIFO multi-server resource on the event engine — used to model a
//! pool of servable replicas (pods) fed by the Task Manager.

use crate::engine::Sim;
use crate::time::SimTime;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

struct Waiting {
    id: u64,
    service: SimTime,
}

struct State {
    capacity: usize,
    busy: usize,
    waiting: VecDeque<Waiting>,
    completions: Vec<(u64, SimTime)>,
}

/// `capacity` identical servers sharing one FIFO queue. Jobs carry
/// their own service times; completions are recorded with their
/// virtual finish time.
#[derive(Clone)]
pub struct FifoServer {
    state: Rc<RefCell<State>>,
}

impl FifoServer {
    /// Create a pool with `capacity` parallel servers.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        FifoServer {
            state: Rc::new(RefCell::new(State {
                capacity,
                busy: 0,
                waiting: VecDeque::new(),
                completions: Vec::new(),
            })),
        }
    }

    /// Submit job `id` with `service` time at the current sim time.
    pub fn submit(&self, sim: &mut Sim, id: u64, service: SimTime) {
        let start_now = {
            let mut st = self.state.borrow_mut();
            if st.busy < st.capacity {
                st.busy += 1;
                true
            } else {
                st.waiting.push_back(Waiting { id, service });
                false
            }
        };
        if start_now {
            self.schedule_completion(sim, id, service);
        }
    }

    fn schedule_completion(&self, sim: &mut Sim, id: u64, service: SimTime) {
        let this = self.clone();
        sim.schedule_in(service, move |sim| {
            let next = {
                let mut st = this.state.borrow_mut();
                let now = sim.now();
                st.completions.push((id, now));
                match st.waiting.pop_front() {
                    Some(job) => Some(job),
                    None => {
                        st.busy -= 1;
                        None
                    }
                }
            };
            if let Some(job) = next {
                this.schedule_completion(sim, job.id, job.service);
            }
        });
    }

    /// Completions recorded so far as `(job id, finish time)`.
    pub fn completions(&self) -> Vec<(u64, SimTime)> {
        self.state.borrow().completions.clone()
    }

    /// Finish time of the latest completion.
    pub fn makespan(&self) -> SimTime {
        self.state
            .borrow()
            .completions
            .iter()
            .map(|(_, t)| *t)
            .max()
            .unwrap_or(SimTime::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_serializes_jobs() {
        let mut sim = Sim::new();
        let server = FifoServer::new(1);
        for id in 0..3 {
            server.submit(&mut sim, id, SimTime::from_millis(10.0));
        }
        sim.run();
        let completions = server.completions();
        assert_eq!(completions.len(), 3);
        assert_eq!(completions[0], (0, SimTime::from_millis(10.0)));
        assert_eq!(completions[1], (1, SimTime::from_millis(20.0)));
        assert_eq!(completions[2], (2, SimTime::from_millis(30.0)));
    }

    #[test]
    fn parallel_servers_overlap() {
        let mut sim = Sim::new();
        let server = FifoServer::new(3);
        for id in 0..3 {
            server.submit(&mut sim, id, SimTime::from_millis(10.0));
        }
        sim.run();
        assert_eq!(server.makespan(), SimTime::from_millis(10.0));
    }

    #[test]
    fn queue_drains_fifo() {
        let mut sim = Sim::new();
        let server = FifoServer::new(2);
        // 5 jobs of 10ms on 2 servers: finish at 10,10,20,20,30.
        for id in 0..5 {
            server.submit(&mut sim, id, SimTime::from_millis(10.0));
        }
        sim.run();
        assert_eq!(server.makespan(), SimTime::from_millis(30.0));
        let order: Vec<u64> = server.completions().iter().map(|(id, _)| *id).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn staggered_arrivals() {
        let mut sim = Sim::new();
        let server = FifoServer::new(1);
        let s2 = server.clone();
        sim.schedule_at(SimTime::from_millis(0.0), {
            let s = server.clone();
            move |sim| s.submit(sim, 0, SimTime::from_millis(5.0))
        });
        // Arrives while idle at t=20: finishes at 25, not 10.
        sim.schedule_at(SimTime::from_millis(20.0), move |sim| {
            s2.submit(sim, 1, SimTime::from_millis(5.0))
        });
        sim.run();
        let completions = server.completions();
        assert_eq!(completions[0].1, SimTime::from_millis(5.0));
        assert_eq!(completions[1].1, SimTime::from_millis(25.0));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        FifoServer::new(0);
    }
}
