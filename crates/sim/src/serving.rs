//! The serving-pipeline timing model.
//!
//! Reproduces the paper's three measurement points for a configurable
//! serving system. A [`ServingProfile`] captures *where time goes* in
//! each system — protocol overheads, queue dispatch cost, cache
//! placement — and [`ServableModel`] carries the calibrated compute
//! cost and payload sizes of one servable. The bench harness measures
//! real Rust kernels once per process and feeds the result in here, so
//! simulated latencies inherit genuine compute ratios while network
//! constants come from the testbed description (§V-A).

use crate::engine::Sim;
use crate::queueing::FifoServer;
use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::rc::Rc;

/// Where a system keeps its memoization cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLocation {
    /// DLHub/Parsl: at the Task Manager — a cache hit never crosses to
    /// the cluster (§V-B5: "Parsl maintains a cache at the Task
    /// Manager, greatly reducing serving latency").
    TaskManager,
    /// Clipper: at the query frontend, deployed *as a pod on the
    /// cluster* — a hit still pays the TM↔cluster hop ("cached
    /// responses still require the request to be transmitted to the
    /// query frontend").
    ClusterFrontend,
}

/// Batching policy: maximum items coalesced into one dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Upper bound on items per dispatched batch.
    pub max_batch: usize,
}

/// A servable's calibrated cost model.
#[derive(Debug, Clone)]
pub struct ServableModel {
    /// Name, e.g. `inception`.
    pub name: String,
    /// Single-inference service time (calibrated from real kernels).
    pub service_time: SimTime,
    /// Input payload in KiB (drives serialization/transfer cost).
    pub input_kb: f64,
    /// Output payload in KiB.
    pub output_kb: f64,
}

impl ServableModel {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        service_time: SimTime,
        input_kb: f64,
        output_kb: f64,
    ) -> Self {
        ServableModel {
            name: name.into(),
            service_time,
            input_kb,
            output_kb,
        }
    }
}

/// Timing profile of one serving system.
#[derive(Debug, Clone)]
pub struct ServingProfile {
    /// System name, e.g. `DLHub`, `TFServing-gRPC`.
    pub name: String,
    /// Management-Service processing per request (intake, routing,
    /// task table, result handling).
    pub ms_overhead: SimTime,
    /// MS ↔ Task Manager round trip (20.7 ms on the paper testbed).
    pub ms_tm_rtt: SimTime,
    /// Task-Manager processing per request.
    pub tm_overhead: SimTime,
    /// TM ↔ cluster round trip (0.17 ms on the paper testbed).
    pub tm_cluster_rtt: SimTime,
    /// Executor dispatch cost per task (serialized at the TM): IPP
    /// dispatch for Parsl, HTTP framing for Flask, gRPC framing for
    /// TF Serving.
    pub dispatch_overhead: SimTime,
    /// Serialization + transfer cost per KiB of payload.
    pub per_kb: SimTime,
    /// Cache placement; `None` = no memoization support.
    pub cache: Option<CacheLocation>,
    /// Cache lookup cost on a hit.
    pub cache_lookup: SimTime,
    /// Relative jitter (sigma of the multiplicative noise applied to
    /// overhead components; the paper's error bars are 5th/95th
    /// percentiles).
    pub jitter: f64,
}

/// The three timings the paper reports per request (§V-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestSample {
    /// Time inside the servable.
    pub inference: SimTime,
    /// TM-to-result time (includes dispatch, transfer, inference).
    pub invocation: SimTime,
    /// MS-to-result time (includes MS overhead, WAN RTT, invocation).
    pub request: SimTime,
    /// Whether the memo cache answered this request.
    pub cache_hit: bool,
}

impl ServingProfile {
    fn jittered(&self, base: SimTime, rng: &mut StdRng) -> SimTime {
        if self.jitter == 0.0 {
            return base;
        }
        // Latency noise is one-sided in practice (GC pauses, queueing):
        // scale by 1 + |N(0, jitter)| approximated from uniforms.
        let u: f64 = rng.gen_range(0.0..1.0);
        let v: f64 = rng.gen_range(0.0..1.0);
        let n = (-2.0 * u.max(1e-12).ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos();
        let factor = 1.0 + self.jitter * n.abs();
        SimTime((base.0 as f64 * factor) as u64)
    }

    fn transfer(&self, kb: f64) -> SimTime {
        SimTime((self.per_kb.0 as f64 * kb) as u64)
    }

    /// Simulate `n` sequential requests (the next is issued only after
    /// the previous response arrives, §V-B). `repeat_input` mirrors
    /// the paper's fixed-input methodology: with memoization enabled
    /// only the first request misses.
    pub fn run_sequential(
        &self,
        servable: &ServableModel,
        n: usize,
        memoize: bool,
        repeat_input: bool,
        seed: u64,
    ) -> Vec<RequestSample> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut samples = Vec::with_capacity(n);
        let mut cache_warm = false;
        for _ in 0..n {
            let hit = memoize && self.cache.is_some() && cache_warm && repeat_input;
            samples.push(self.one_request(servable, hit, &mut rng));
            if memoize && repeat_input {
                cache_warm = true;
            }
        }
        samples
    }

    fn one_request(
        &self,
        servable: &ServableModel,
        cache_hit: bool,
        rng: &mut StdRng,
    ) -> RequestSample {
        let ms = self.jittered(self.ms_overhead, rng);
        let wan = self.jittered(self.ms_tm_rtt, rng);
        let tm = self.jittered(self.tm_overhead, rng);
        match (cache_hit, self.cache) {
            (true, Some(CacheLocation::TaskManager)) => {
                // Hit at the TM: no cluster hop, no dispatch, no
                // inference. Invocation collapses to the lookup.
                let lookup = self.jittered(self.cache_lookup, rng);
                let invocation = lookup;
                let request = ms + wan + tm + invocation;
                RequestSample {
                    inference: SimTime::ZERO,
                    invocation,
                    request,
                    cache_hit: true,
                }
            }
            (true, Some(CacheLocation::ClusterFrontend)) => {
                // Hit at the cluster frontend: the request still
                // crosses TM -> cluster and back.
                let lan = self.jittered(self.tm_cluster_rtt, rng);
                let frontend = self.jittered(self.dispatch_overhead, rng);
                let transfer = self.transfer(servable.input_kb) + self.transfer(servable.output_kb);
                let lookup = self.jittered(self.cache_lookup, rng);
                let invocation = lan + frontend + transfer + lookup;
                let request = ms + wan + tm + invocation;
                RequestSample {
                    inference: SimTime::ZERO,
                    invocation,
                    request,
                    cache_hit: true,
                }
            }
            _ => {
                let lan = self.jittered(self.tm_cluster_rtt, rng);
                let dispatch = self.jittered(self.dispatch_overhead, rng);
                let transfer = self.transfer(servable.input_kb) + self.transfer(servable.output_kb);
                let inference = self.jittered(servable.service_time, rng);
                let invocation = lan + dispatch + transfer + inference;
                let request = ms + wan + tm + invocation;
                RequestSample {
                    inference,
                    invocation,
                    request,
                    cache_hit: false,
                }
            }
        }
    }

    /// [`Self::run_sequential`], additionally recording every sample
    /// into a metrics registry under the same per-servable schema the
    /// live Management Service uses (`requests`, `cache_hits` and the
    /// three latency histograms of §V-A). A simulated system's
    /// exported snapshot is then directly comparable to a real run's.
    pub fn run_sequential_observed(
        &self,
        servable: &ServableModel,
        n: usize,
        memoize: bool,
        repeat_input: bool,
        seed: u64,
        metrics: &dlhub_obs::Registry,
    ) -> Vec<RequestSample> {
        let samples = self.run_sequential(servable, n, memoize, repeat_input, seed);
        record_samples(
            metrics,
            &format!("{}/{}", self.name, servable.name),
            &samples,
        );
        samples
    }

    /// Total *invocation* time to process `n` requests with or without
    /// batching (Figs 5 and 6). Without batching, each item pays the
    /// full dispatch path sequentially. With batching, all `n` inputs
    /// coalesce into ceil(n / max_batch) dispatches whose payloads
    /// scale with the batch size and whose inferences run
    /// back-to-back on one replica.
    pub fn run_batch(
        &self,
        servable: &ServableModel,
        n: usize,
        batching: Option<BatchPolicy>,
        seed: u64,
    ) -> SimTime {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut total = SimTime::ZERO;
        match batching {
            None => {
                for _ in 0..n {
                    let s = self.one_request(servable, false, &mut rng);
                    total += s.invocation;
                }
            }
            Some(policy) => {
                let mut remaining = n;
                while remaining > 0 {
                    let batch = remaining.min(policy.max_batch.max(1));
                    remaining -= batch;
                    let lan = self.jittered(self.tm_cluster_rtt, &mut rng);
                    let dispatch = self.jittered(self.dispatch_overhead, &mut rng);
                    let transfer = self.transfer(servable.input_kb * batch as f64)
                        + self.transfer(servable.output_kb * batch as f64);
                    let mut inference = SimTime::ZERO;
                    for _ in 0..batch {
                        inference += self.jittered(servable.service_time, &mut rng);
                    }
                    total += lan + dispatch + transfer + inference;
                }
            }
        }
        total
    }

    /// Makespan for `n` requests served by `replicas` parallel pods
    /// (Fig 7). Dispatch is serialized at the Task Manager — the
    /// mechanism behind the paper's observed saturation: adding
    /// replicas stops helping once `dispatch_overhead` dominates
    /// `service_time / replicas`.
    pub fn run_throughput(
        &self,
        servable: &ServableModel,
        n: usize,
        replicas: usize,
        seed: u64,
    ) -> SimTime {
        self.run_throughput_multi_tm(servable, n, replicas, 1, seed)
    }

    /// Makespan with `task_managers` Task Managers sharing the queue
    /// ("one or more Task Managers", §IV): requests split round-robin
    /// across the TMs, each of which serializes its own dispatch, all
    /// feeding the same replica pool. Lifts the dispatch ceiling from
    /// `1/d` to `k/d`.
    pub fn run_throughput_multi_tm(
        &self,
        servable: &ServableModel,
        n: usize,
        replicas: usize,
        task_managers: usize,
        seed: u64,
    ) -> SimTime {
        let task_managers = task_managers.max(1);
        let mut sim = Sim::new();
        let pool = FifoServer::new(replicas);
        let rng = Rc::new(RefCell::new(StdRng::seed_from_u64(seed)));
        let mut dispatch_clocks = vec![SimTime::ZERO; task_managers];
        for id in 0..n as u64 {
            // Round-robin queue pop; dispatch serialized per TM.
            let tm = (id as usize) % task_managers;
            let d = self.jittered(self.dispatch_overhead, &mut rng.borrow_mut());
            dispatch_clocks[tm] += d;
            let arrive = dispatch_clocks[tm]
                + SimTime((self.tm_cluster_rtt.0 as f64 / 2.0) as u64)
                + self.transfer(servable.input_kb);
            let service = self.jittered(servable.service_time, &mut rng.borrow_mut());
            let pool2 = pool.clone();
            sim.schedule_at(arrive, move |sim| pool2.submit(sim, id, service));
        }
        sim.run();
        pool.makespan()
    }
}

/// Record a simulated timing series into a metrics registry under one
/// servable name. `SimTime` is nanoseconds, matching the live
/// histograms' units; a cache hit skips the inference histogram just
/// like the real request path does.
pub fn record_samples(metrics: &dlhub_obs::Registry, servable: &str, samples: &[RequestSample]) {
    let series = metrics.series(servable);
    for sample in samples {
        series.requests.inc();
        series.request_latency.record(sample.request.0);
        series.invocation_latency.record(sample.invocation.0);
        if sample.cache_hit {
            series.cache_hits.inc();
        } else {
            series.inference_latency.record(sample.inference.0);
        }
    }
}

/// Replay a simulated timing series through an [`dlhub_obs::Obs`]
/// handle's metric registry *and* its telemetry collector, on the
/// closed-loop virtual clock (the next request is issued when the
/// previous response lands, §V-B): after each sample the virtual time
/// advances by that request's latency, and whenever it crosses a
/// base-step boundary of the collector the store takes one sampling
/// pass at exactly that boundary. Because every timestamp comes from
/// `SimTime` — never the wall clock — two replays of the same seeded
/// sample series export bit-identical series. Requires the handle's
/// telemetry to be armed in manual mode
/// ([`dlhub_obs::Obs::enable_telemetry_manual`]); returns the number
/// of sampling passes taken.
pub fn replay_telemetry(obs: &dlhub_obs::Obs, servable: &str, samples: &[RequestSample]) -> u64 {
    let step = obs
        .telemetry
        .base_step()
        .expect("telemetry must be enabled (manual mode) before replay")
        .as_nanos()
        .min(u64::MAX as u128) as u64;
    let series = obs.metrics.series(servable);
    let mut now = 0u64;
    let mut next_pass = step;
    let mut passes = 0u64;
    for sample in samples {
        now += sample.request.0;
        while next_pass <= now {
            obs.telemetry.sample_now(next_pass);
            next_pass += step;
            passes += 1;
        }
        series.requests.inc();
        series.request_latency.record(sample.request.0);
        series.invocation_latency.record(sample.invocation.0);
        if sample.cache_hit {
            series.cache_hits.inc();
        } else {
            series.inference_latency.record(sample.inference.0);
        }
    }
    // One closing pass so the final partial step is captured.
    obs.telemetry.sample_now(next_pass);
    passes + 1
}

/// Fraction of samples whose request latency meets `threshold` — the
/// virtual-time counterpart of the serving stack's SLO burn tracking
/// (which runs on wall-clock windows and so can't be driven by the
/// simulator). 1.0 for an empty sample set: no traffic burns no budget.
pub fn slo_attainment(samples: &[RequestSample], threshold: SimTime) -> f64 {
    if samples.is_empty() {
        return 1.0;
    }
    let good = samples.iter().filter(|s| s.request <= threshold).count();
    good as f64 / samples.len() as f64
}

/// Median, 5th and 95th percentile of a timing series, in the order
/// `(p5, median, p95)`.
pub fn percentiles(values: &[SimTime]) -> (SimTime, SimTime, SimTime) {
    assert!(!values.is_empty());
    let mut sorted: Vec<SimTime> = values.to_vec();
    sorted.sort();
    let at = |q: f64| sorted[((sorted.len() - 1) as f64 * q).round() as usize];
    (at(0.05), at(0.5), at(0.95))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(cache: Option<CacheLocation>) -> ServingProfile {
        ServingProfile {
            name: "test".into(),
            ms_overhead: SimTime::from_millis(5.0),
            ms_tm_rtt: SimTime::from_millis(20.7),
            tm_overhead: SimTime::from_millis(2.0),
            tm_cluster_rtt: SimTime::from_micros(170.0),
            dispatch_overhead: SimTime::from_millis(3.0),
            per_kb: SimTime::from_micros(20.0),
            cache,
            cache_lookup: SimTime::from_millis(0.5),
            jitter: 0.0,
        }
    }

    fn servable() -> ServableModel {
        ServableModel::new("m", SimTime::from_millis(40.0), 100.0, 1.0)
    }

    #[test]
    fn slo_attainment_counts_good_requests() {
        let mk = |ms: f64| RequestSample {
            inference: SimTime::from_millis(1.0),
            invocation: SimTime::from_millis(2.0),
            request: SimTime::from_millis(ms),
            cache_hit: false,
        };
        let samples = vec![mk(10.0), mk(20.0), mk(30.0), mk(40.0)];
        assert_eq!(slo_attainment(&samples, SimTime::from_millis(25.0)), 0.5);
        assert_eq!(slo_attainment(&samples, SimTime::from_millis(40.0)), 1.0);
        assert_eq!(slo_attainment(&[], SimTime::from_millis(1.0)), 1.0);
        // Warm memoized repeat traffic attains a threshold that cold
        // traffic misses on every request but the cache warmup.
        let p = profile(Some(CacheLocation::TaskManager));
        let cold = p.run_sequential(&servable(), 5, false, true, 0);
        let warm = p.run_sequential(&servable(), 5, true, true, 0);
        let tight = SimTime::from_millis(30.0);
        assert!(slo_attainment(&warm, tight) > slo_attainment(&cold, tight));
    }

    #[test]
    fn request_decomposes_into_nested_timings() {
        let p = profile(None);
        let s = &p.run_sequential(&servable(), 1, false, true, 0)[0];
        assert_eq!(s.inference, SimTime::from_millis(40.0));
        // invocation = lan 0.17 + dispatch 3 + transfer 101*0.02 + 40
        let expected_invocation = SimTime::from_micros(170.0)
            + SimTime::from_millis(3.0)
            + SimTime::from_micros(20.0 * 101.0)
            + SimTime::from_millis(40.0);
        assert_eq!(s.invocation, expected_invocation);
        // request = ms 5 + wan 20.7 + tm 2 + invocation
        let expected_request = SimTime::from_millis(5.0)
            + SimTime::from_millis(20.7)
            + SimTime::from_millis(2.0)
            + expected_invocation;
        assert_eq!(s.request, expected_request);
        assert!(s.invocation < s.request);
        assert!(s.inference < s.invocation);
    }

    #[test]
    fn tm_cache_hit_collapses_invocation() {
        let p = profile(Some(CacheLocation::TaskManager));
        let samples = p.run_sequential(&servable(), 3, true, true, 0);
        assert!(!samples[0].cache_hit);
        assert!(samples[1].cache_hit && samples[2].cache_hit);
        // ~1ms invocation on hits (paper: "extremely low invocation
        // times (1ms)").
        assert_eq!(samples[1].invocation, SimTime::from_millis(0.5));
        assert!(samples[1].request < samples[0].request);
        assert_eq!(samples[1].inference, SimTime::ZERO);
    }

    #[test]
    fn frontend_cache_hit_still_pays_cluster_hop() {
        let tm = profile(Some(CacheLocation::TaskManager));
        let fe = profile(Some(CacheLocation::ClusterFrontend));
        let tm_hit = tm.run_sequential(&servable(), 2, true, true, 0)[1];
        let fe_hit = fe.run_sequential(&servable(), 2, true, true, 0)[1];
        assert!(fe_hit.invocation > tm_hit.invocation);
        // But both beat the miss path.
        let miss = tm.run_sequential(&servable(), 1, false, true, 0)[0];
        assert!(fe_hit.invocation < miss.invocation);
    }

    #[test]
    fn no_memo_when_inputs_differ() {
        let p = profile(Some(CacheLocation::TaskManager));
        let samples = p.run_sequential(&servable(), 3, true, false, 0);
        assert!(samples.iter().all(|s| !s.cache_hit));
    }

    #[test]
    fn batching_amortizes_overheads() {
        let p = profile(None);
        let m = servable();
        let unbatched = p.run_batch(&m, 50, None, 0);
        let batched = p.run_batch(&m, 50, Some(BatchPolicy { max_batch: 50 }), 0);
        assert!(batched < unbatched);
        // Savings equal 49 dispatch+RTT rounds.
        let saved = unbatched - batched;
        assert!(saved > SimTime::from_millis(49.0 * 3.0));
    }

    #[test]
    fn batched_time_is_roughly_linear_in_n() {
        let p = profile(None);
        let m = servable();
        let t1k = p.run_batch(&m, 1000, Some(BatchPolicy { max_batch: 10_000 }), 0);
        let t2k = p.run_batch(&m, 2000, Some(BatchPolicy { max_batch: 10_000 }), 0);
        let ratio = t2k.as_millis() / t1k.as_millis();
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn throughput_saturates_with_replicas() {
        let p = profile(None);
        let m = servable(); // 40ms service, 3ms dispatch -> knee ~13
        let t1 = p.run_throughput(&m, 500, 1, 0);
        let t4 = p.run_throughput(&m, 500, 4, 0);
        let t13 = p.run_throughput(&m, 500, 13, 0);
        let t26 = p.run_throughput(&m, 500, 26, 0);
        assert!(t4 < t1);
        assert!(t13 < t4);
        // Beyond the knee, improvement nearly vanishes.
        let gain_beyond_knee = t13.as_millis() / t26.as_millis();
        assert!(gain_beyond_knee < 1.1, "gain {gain_beyond_knee}");
        // Below the knee, scaling is near-linear.
        let early_gain = t1.as_millis() / t4.as_millis();
        assert!(early_gain > 3.0, "early gain {early_gain}");
    }

    #[test]
    fn extra_task_managers_lift_the_dispatch_ceiling() {
        let p = profile(None);
        let m = servable(); // 40ms service, 3ms dispatch
                            // Past the single-TM knee, more replicas are wasted…
        let one_tm = p.run_throughput_multi_tm(&m, 600, 40, 1, 0);
        // …until a second TM doubles the dispatch rate.
        let two_tm = p.run_throughput_multi_tm(&m, 600, 40, 2, 0);
        let gain = one_tm.as_millis() / two_tm.as_millis();
        assert!(gain > 1.7, "gain {gain}");
        // With few replicas the pool is the bottleneck and extra TMs
        // barely matter.
        let one_tm_small = p.run_throughput_multi_tm(&m, 600, 2, 1, 0);
        let two_tm_small = p.run_throughput_multi_tm(&m, 600, 2, 2, 0);
        let small_gain = one_tm_small.as_millis() / two_tm_small.as_millis();
        assert!(small_gain < 1.1, "small gain {small_gain}");
    }

    #[test]
    fn short_tasks_saturate_earlier() {
        let p = profile(None);
        let long = servable(); // 40ms
        let short = ServableModel::new("s", SimTime::from_millis(5.0), 1.0, 1.0);
        // Gain from 2 -> 8 replicas.
        let gain = |m: &ServableModel| {
            p.run_throughput(m, 500, 2, 0).as_millis() / p.run_throughput(m, 500, 8, 0).as_millis()
        };
        assert!(gain(&long) > gain(&short));
    }

    #[test]
    fn jitter_produces_spread_but_is_deterministic() {
        let mut p = profile(None);
        p.jitter = 0.15;
        let a = p.run_sequential(&servable(), 100, false, true, 7);
        let b = p.run_sequential(&servable(), 100, false, true, 7);
        assert_eq!(a, b);
        let requests: Vec<SimTime> = a.iter().map(|s| s.request).collect();
        let (p5, p50, p95) = percentiles(&requests);
        assert!(p5 <= p50 && p50 <= p95);
        assert!(p95 > p5, "jitter must spread the distribution");
    }

    #[test]
    fn observed_runs_export_the_live_metrics_schema() {
        let p = profile(Some(CacheLocation::TaskManager));
        let metrics = dlhub_obs::Registry::new();
        let samples = p.run_sequential_observed(&servable(), 5, true, true, 0, &metrics);
        assert_eq!(samples.len(), 5);
        let snap = metrics.snapshot();
        let (name, series) = &snap.servables[0];
        assert_eq!(name, "test/m");
        assert_eq!(series.requests, 5);
        assert_eq!(series.cache_hits, 4);
        let request = series.request_latency.as_ref().unwrap();
        assert_eq!(request.count, 5);
        // Only the one miss reaches the servable.
        assert_eq!(series.inference_latency.as_ref().unwrap().count, 1);
        // And the artifact renders exactly like a live run's.
        assert!(snap
            .render_prometheus()
            .contains("dlhub_servable_requests_total{servable=\"test/m\"} 5"));
    }

    #[test]
    fn percentiles_of_constant_series() {
        let series = vec![SimTime::from_millis(3.0); 10];
        let (p5, p50, p95) = percentiles(&series);
        assert_eq!(p5, p50);
        assert_eq!(p50, p95);
    }
}
