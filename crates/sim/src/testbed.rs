//! The paper's testbed constants and the serving profiles of every
//! system compared in §V.
//!
//! Network constants come straight from §V-A: the Management Service
//! runs on EC2 with a 20.7 ms RTT to the Task Manager on Cooley, which
//! sits 0.17 ms from PetrelKube. Per-system overhead constants encode
//! the *architectural* facts the paper attributes the results to:
//! the C++ `tensorflow_model_server` has the smallest per-request
//! cost, gRPC beats REST by HTTP framing overhead, Flask and the
//! Python-based DLHub stack pay interpreter overhead, and the two
//! memoizing systems differ in cache placement.

use crate::serving::{CacheLocation, ServingProfile};
use crate::time::SimTime;

/// MS ↔ Task Manager RTT (EC2 → Cooley), §V-A.
pub const MS_TM_RTT_MS: f64 = 20.7;
/// Task Manager ↔ PetrelKube RTT, §V-A.
pub const TM_CLUSTER_RTT_MS: f64 = 0.17;
/// PetrelKube node count, §V-A.
pub const PETRELKUBE_NODES: usize = 14;

/// Relative jitter used for all profiles (drives the 5th/95th
/// percentile error bars).
pub const DEFAULT_JITTER: f64 = 0.12;

fn base(name: &str) -> ServingProfile {
    ServingProfile {
        name: name.to_string(),
        ms_overhead: SimTime::from_millis(4.0),
        ms_tm_rtt: SimTime::from_millis(MS_TM_RTT_MS),
        tm_overhead: SimTime::from_millis(2.0),
        tm_cluster_rtt: SimTime::from_millis(TM_CLUSTER_RTT_MS),
        dispatch_overhead: SimTime::from_millis(3.0),
        per_kb: SimTime::from_micros(15.0),
        cache: None,
        cache_lookup: SimTime::from_millis(0.4),
        jitter: DEFAULT_JITTER,
    }
}

/// DLHub with the Parsl executor: Python dispatch via IPP (~3 ms per
/// task) and a Task-Manager-side memo cache. The in-process hash-map
/// lookup is far cheaper than a dispatch (paper §V-B2 measures
/// 95.3–99.8 % invocation-time cuts).
pub fn dlhub() -> ServingProfile {
    ServingProfile {
        cache: Some(CacheLocation::TaskManager),
        cache_lookup: SimTime::from_micros(150.0),
        ..base("DLHub")
    }
}

/// TensorFlow Serving over gRPC: C++ server, binary protocol — the
/// lowest-overhead path in Fig 8.
pub fn tfserving_grpc() -> ServingProfile {
    ServingProfile {
        dispatch_overhead: SimTime::from_millis(0.8),
        per_kb: SimTime::from_micros(8.0),
        ..base("TFServing-gRPC")
    }
}

/// TensorFlow Serving over REST: same C++ server, plus HTTP/JSON
/// framing.
pub fn tfserving_rest() -> ServingProfile {
    ServingProfile {
        dispatch_overhead: SimTime::from_millis(1.6),
        per_kb: SimTime::from_micros(14.0),
        ..base("TFServing-REST")
    }
}

/// SageMaker container running TF Serving, gRPC interface.
pub fn sagemaker_tfserving_grpc() -> ServingProfile {
    ServingProfile {
        dispatch_overhead: SimTime::from_millis(1.1),
        per_kb: SimTime::from_micros(9.0),
        ..base("SageMaker-TFServing-gRPC")
    }
}

/// SageMaker container running TF Serving, REST interface.
pub fn sagemaker_tfserving_rest() -> ServingProfile {
    ServingProfile {
        dispatch_overhead: SimTime::from_millis(1.9),
        per_kb: SimTime::from_micros(15.0),
        ..base("SageMaker-TFServing-REST")
    }
}

/// SageMaker's native Flask application: Python HTTP stack.
pub fn sagemaker_flask() -> ServingProfile {
    ServingProfile {
        dispatch_overhead: SimTime::from_millis(2.8),
        per_kb: SimTime::from_micros(16.0),
        ..base("SageMaker-Flask")
    }
}

/// Clipper: Dockerized model containers behind a query frontend *on
/// the cluster*, with batching and frontend-side memoization.
pub fn clipper() -> ServingProfile {
    ServingProfile {
        dispatch_overhead: SimTime::from_millis(2.2),
        cache: Some(CacheLocation::ClusterFrontend),
        ..base("Clipper")
    }
}

/// All Fig 8 profiles in presentation order.
pub fn all_profiles() -> Vec<ServingProfile> {
    vec![
        tfserving_grpc(),
        tfserving_rest(),
        sagemaker_tfserving_grpc(),
        sagemaker_tfserving_rest(),
        sagemaker_flask(),
        clipper(),
        dlhub(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serving::ServableModel;

    fn cifar() -> ServableModel {
        ServableModel::new("cifar10", SimTime::from_millis(5.0), 12.0, 0.2)
    }

    #[test]
    fn ordering_matches_figure_8() {
        // Median invocation times must order: TFS-gRPC < TFS-REST <
        // SageMaker variants < DLHub (Python), with DLHub comparable
        // to SageMaker-Flask.
        let m = cifar();
        let median = |p: &ServingProfile| {
            let samples = p.run_sequential(&m, 100, false, true, 42);
            let mut inv: Vec<_> = samples.iter().map(|s| s.invocation).collect();
            inv.sort();
            inv[50]
        };
        let tfs_grpc = median(&tfserving_grpc());
        let tfs_rest = median(&tfserving_rest());
        let sm_flask = median(&sagemaker_flask());
        let dlhub_t = median(&dlhub());
        assert!(tfs_grpc < tfs_rest, "gRPC must beat REST");
        assert!(tfs_rest < sm_flask, "C++ must beat Flask");
        // DLHub is comparable to the Python-based stacks (within 25%).
        let ratio = dlhub_t.as_millis() / sm_flask.as_millis();
        assert!((0.75..1.25).contains(&ratio), "DLHub/Flask ratio {ratio}");
    }

    #[test]
    fn dlhub_memo_beats_everyone() {
        let m = cifar();
        let dl = dlhub();
        let hit = dl.run_sequential(&m, 2, true, true, 1)[1];
        assert!(hit.invocation < SimTime::from_millis(2.0));
        let clipper_hit = clipper().run_sequential(&m, 2, true, true, 1)[1];
        assert!(hit.invocation < clipper_hit.invocation);
    }

    #[test]
    fn constants_match_paper() {
        let p = dlhub();
        assert!((p.ms_tm_rtt.as_millis() - 20.7).abs() < 1e-9);
        assert!((p.tm_cluster_rtt.as_millis() - 0.17).abs() < 1e-9);
        assert_eq!(PETRELKUBE_NODES, 14);
    }

    #[test]
    fn request_times_are_in_the_papers_envelope() {
        // §I: "DLHub can serve requests to run models in less than
        // 40ms" (CIFAR-scale) — our median must land well under that.
        let m = cifar();
        let samples = dlhub().run_sequential(&m, 100, false, true, 3);
        let mut req: Vec<_> = samples.iter().map(|s| s.request).collect();
        req.sort();
        let median = req[50];
        assert!(
            median < SimTime::from_millis(45.0),
            "median request {median}"
        );
        assert!(median > SimTime::from_millis(25.0), "too fast: {median}");
    }
}
