//! Virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation origin.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        SimTime((ms * 1e6) as u64)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: f64) -> Self {
        SimTime((us * 1e3) as u64)
    }

    /// Value in (fractional) milliseconds.
    pub fn as_millis(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Value in (fractional) seconds.
    pub fn as_secs(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Convert a wall-clock `Duration` measured from real kernels into
    /// virtual time.
    pub fn from_duration(d: Duration) -> Self {
        SimTime(d.as_nanos() as u64)
    }

    /// Saturating difference.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_millis(20.7);
        assert!((t.as_millis() - 20.7).abs() < 1e-9);
        assert_eq!(SimTime::from_micros(170.0).as_millis(), 0.17);
        assert_eq!(
            SimTime::from_duration(Duration::from_millis(5)).0,
            5_000_000
        );
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(10.0);
        let b = SimTime::from_millis(4.0);
        assert_eq!((a + b).as_millis(), 14.0);
        assert_eq!((a - b).as_millis(), 6.0);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c.as_millis(), 14.0);
    }

    #[test]
    fn display_formats_millis() {
        assert_eq!(SimTime::from_millis(1.5).to_string(), "1.500ms");
    }
}
