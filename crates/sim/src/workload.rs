//! Seeded synthetic workloads on the virtual clock.
//!
//! Every generator here is a pure function of a seed: replaying the
//! same seed hands the harness byte-identical inputs, tick for tick.
//! The family covers the traffic shapes a serving system actually
//! meets, not just the memoryless baseline:
//!
//! * [`PoissonArrivals`] — the baseline open-loop process; exponential
//!   inter-arrival gaps, rate changeable mid-run.
//! * [`MmppArrivals`] — a two-state Markov-modulated Poisson process
//!   (calm/burst) whose exponential state sojourns produce the
//!   overdispersed, self-similar-looking bursts real request logs
//!   show (index of dispersion ≫ 1, where Poisson pins it at 1).
//! * [`DiurnalArrivals`] — an inhomogeneous Poisson process whose
//!   rate follows a sinusoidal daily cycle, sampled exactly by
//!   thinning against the peak rate.
//! * [`ZipfPopularity`] — rank-frequency popularity over a catalog of
//!   registered servables (a few hot models, a long cold tail).
//! * [`LognormalSizes`] / [`ParetoSizes`] — heavy-tailed payload
//!   sizes (most requests small, a fat tail of huge ones).
//! * [`TenantMix`] — weighted multi-tenant attribution, the substrate
//!   for hostile-tenant overload scenarios.
//!
//! [`build_schedule`] composes any arrival process with popularity,
//! tenancy and size samplers into a [`WorkloadSchedule`] — the full
//! materialized request list a bench replays open-loop, with a
//! fingerprint that makes "same seed, same schedule" checkable across
//! processes.

use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NS_PER_SEC: f64 = 1e9;

/// Exponential draw with rate `rate_per_sec`, in virtual nanoseconds.
fn exp_gap(rng: &mut StdRng, rate_per_sec: f64) -> SimTime {
    let u: f64 = rng.gen_range(0.0..1.0);
    let secs = -(1.0 - u).ln() / rate_per_sec;
    SimTime((secs * NS_PER_SEC) as u64)
}

/// An open-loop arrival process on the virtual clock: a monotone
/// stream of arrival instants, fully determined by the seed it was
/// built from.
pub trait ArrivalProcess {
    /// Consume and return the next arrival, `None` when the process
    /// is (currently) silent.
    fn next_arrival(&mut self) -> Option<SimTime>;
}

/// A seeded Poisson arrival process on virtual time.
pub struct PoissonArrivals {
    rng: StdRng,
    rate_per_sec: f64,
    /// Virtual time consumed so far; arrivals before this are spent.
    cursor: SimTime,
    /// First arrival at or after `cursor`, if already drawn.
    next: Option<SimTime>,
}

impl PoissonArrivals {
    /// A process emitting `rate_per_sec` arrivals per virtual second
    /// on average, fully determined by `seed`.
    pub fn new(rate_per_sec: f64, seed: u64) -> Self {
        PoissonArrivals {
            rng: StdRng::seed_from_u64(seed),
            rate_per_sec,
            cursor: SimTime::ZERO,
            next: None,
        }
    }

    /// Change the intensity from the current cursor onward. The
    /// pending arrival (drawn at the old rate) is discarded: a Poisson
    /// process is memoryless, so resampling from the cursor is
    /// indistinguishable from conditioning on "no arrival yet".
    pub fn set_rate(&mut self, rate_per_sec: f64) {
        self.rate_per_sec = rate_per_sec;
        self.next = None;
    }

    /// Current intensity in arrivals per virtual second.
    pub fn rate(&self) -> f64 {
        self.rate_per_sec
    }

    /// Exponential gap to the next arrival, `None` while the rate is
    /// zero (the process is silent until the rate changes).
    fn sample_gap(&mut self) -> Option<SimTime> {
        if self.rate_per_sec <= 0.0 {
            return None;
        }
        Some(exp_gap(&mut self.rng, self.rate_per_sec))
    }

    /// Next arrival time at or after the cursor, without consuming it.
    pub fn peek(&mut self) -> Option<SimTime> {
        if self.next.is_none() {
            let gap = self.sample_gap()?;
            self.next = Some(self.cursor + gap);
        }
        self.next
    }

    /// Consume and return the next arrival time.
    pub fn pop(&mut self) -> Option<SimTime> {
        let at = self.peek()?;
        self.cursor = at;
        self.next = None;
        Some(at)
    }

    /// Count (and consume) every arrival strictly before `until`,
    /// advancing the cursor to `until`. This is the tick-grid view the
    /// telemetry harness feeds into a requests counter.
    pub fn count_until(&mut self, until: SimTime) -> u64 {
        let mut n = 0;
        while let Some(at) = self.peek() {
            if at >= until {
                break;
            }
            self.pop();
            n += 1;
        }
        if self.cursor < until {
            self.cursor = until;
        }
        n
    }
}

impl ArrivalProcess for PoissonArrivals {
    fn next_arrival(&mut self) -> Option<SimTime> {
        self.pop()
    }
}

/// A two-state Markov-modulated Poisson process: the process spends
/// exponentially-distributed sojourns in a *calm* state and a *burst*
/// state, emitting Poisson arrivals at that state's rate. State
/// switches exploit memorylessness exactly like
/// [`PoissonArrivals::set_rate`]: a pending gap that crosses the
/// switch instant is discarded and resampled at the new rate, which
/// is distributionally exact and keeps the whole stream a pure
/// function of the seed.
pub struct MmppArrivals {
    rng: StdRng,
    /// Arrival rate per state, arrivals per virtual second.
    rates: [f64; 2],
    /// Mean sojourn per state, virtual seconds.
    sojourn_secs: [f64; 2],
    state: usize,
    state_until: SimTime,
    cursor: SimTime,
}

impl MmppArrivals {
    /// A process alternating between `calm_rate` and `burst_rate`
    /// arrivals/s with exponential sojourns of the given means,
    /// starting calm at time zero.
    pub fn new(
        calm_rate: f64,
        burst_rate: f64,
        calm_secs: f64,
        burst_secs: f64,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let first = exp_gap(&mut rng, 1.0 / calm_secs.max(f64::MIN_POSITIVE));
        MmppArrivals {
            rng,
            rates: [calm_rate, burst_rate],
            sojourn_secs: [calm_secs, burst_secs],
            state: 0,
            state_until: first,
            cursor: SimTime::ZERO,
        }
    }

    /// The state the process is in at its cursor (0 calm, 1 burst).
    pub fn state(&self) -> usize {
        self.state
    }

    fn switch_state(&mut self) {
        self.cursor = self.state_until;
        self.state = 1 - self.state;
        let mean = self.sojourn_secs[self.state].max(f64::MIN_POSITIVE);
        self.state_until = self.cursor + exp_gap(&mut self.rng, 1.0 / mean);
    }
}

impl ArrivalProcess for MmppArrivals {
    fn next_arrival(&mut self) -> Option<SimTime> {
        if self.rates[0] <= 0.0 && self.rates[1] <= 0.0 {
            return None;
        }
        loop {
            let rate = self.rates[self.state];
            if rate <= 0.0 {
                // Silent state: nothing can arrive before the switch.
                self.switch_state();
                continue;
            }
            let candidate = self.cursor + exp_gap(&mut self.rng, rate);
            if candidate < self.state_until {
                self.cursor = candidate;
                return Some(candidate);
            }
            // The gap crossed the state boundary: discard and resample
            // in the next state (memorylessness makes this exact).
            self.switch_state();
        }
    }
}

/// An inhomogeneous Poisson process whose rate follows a sinusoidal
/// daily cycle: `rate(t) = base · (1 + amplitude · sin(2πt/period))`.
/// Sampling is exact via thinning: candidates are drawn at the peak
/// rate and accepted with probability `rate(t)/peak`, so no rate
/// discretisation grid is involved.
pub struct DiurnalArrivals {
    rng: StdRng,
    base_rate: f64,
    amplitude: f64,
    period_ns: u64,
    cursor: SimTime,
}

impl DiurnalArrivals {
    /// A cycle with mean `base_rate` arrivals/s swinging by
    /// `amplitude` (clamped to `0.0..=1.0`; 1.0 means the trough is
    /// silent) over `period_secs` virtual seconds.
    pub fn new(base_rate: f64, amplitude: f64, period_secs: f64, seed: u64) -> Self {
        DiurnalArrivals {
            rng: StdRng::seed_from_u64(seed),
            base_rate,
            amplitude: amplitude.clamp(0.0, 1.0),
            period_ns: (period_secs * NS_PER_SEC) as u64,
            cursor: SimTime::ZERO,
        }
    }

    /// The instantaneous rate at virtual time `at`, arrivals/s.
    pub fn rate_at(&self, at: SimTime) -> f64 {
        let phase = (at.0 % self.period_ns) as f64 / self.period_ns as f64;
        self.base_rate * (1.0 + self.amplitude * (2.0 * std::f64::consts::PI * phase).sin())
    }
}

impl ArrivalProcess for DiurnalArrivals {
    fn next_arrival(&mut self) -> Option<SimTime> {
        if self.base_rate <= 0.0 {
            return None;
        }
        let peak = self.base_rate * (1.0 + self.amplitude);
        loop {
            let candidate = self.cursor + exp_gap(&mut self.rng, peak);
            self.cursor = candidate;
            let accept: f64 = self.rng.gen_range(0.0..1.0);
            if accept < self.rate_at(candidate) / peak {
                return Some(candidate);
            }
        }
    }
}

/// Zipf rank-frequency popularity over a catalog of `n` items: rank
/// `r` (0-based) is drawn with probability proportional to
/// `1/(r+1)^exponent`. Sampling is a binary search over the
/// precomputed CDF, so catalogs of thousands of servables cost
/// `O(log n)` per draw.
pub struct ZipfPopularity {
    rng: StdRng,
    cdf: Vec<f64>,
}

impl ZipfPopularity {
    /// Popularity over `n` ranks with the given exponent (1.0 is the
    /// classic web-trace value; larger skews harder).
    pub fn new(n: usize, exponent: f64, seed: u64) -> Self {
        assert!(n > 0, "a popularity law needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(exponent);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfPopularity {
            rng: StdRng::seed_from_u64(seed),
            cdf,
        }
    }

    /// Number of ranks in the catalog.
    pub fn ranks(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one rank in `0..ranks()`.
    pub fn sample(&mut self) -> usize {
        let u: f64 = self.rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Heavy-tailed payload sizes from a lognormal: most requests are
/// near the median, the tail stretches over decades. Draws use the
/// Box-Muller transform over the seeded generator, so the stream is
/// deterministic.
pub struct LognormalSizes {
    rng: StdRng,
    mu: f64,
    sigma: f64,
    max_bytes: u64,
}

impl LognormalSizes {
    /// Sizes with the given median and log-space spread `sigma`,
    /// capped at `max_bytes` (the tail is unbounded otherwise).
    pub fn new(median_bytes: f64, sigma: f64, max_bytes: u64, seed: u64) -> Self {
        LognormalSizes {
            rng: StdRng::seed_from_u64(seed),
            mu: median_bytes.max(1.0).ln(),
            sigma,
            max_bytes: max_bytes.max(1),
        }
    }

    /// Draw one payload size in bytes.
    pub fn sample(&mut self) -> u64 {
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (self.mu + self.sigma * z).exp();
        (v as u64).clamp(1, self.max_bytes)
    }
}

/// Heavy-tailed payload sizes from a Pareto law: inverse-CDF draws
/// `scale / u^(1/alpha)`, capped at `max_bytes`. Alphas near 1 give
/// the "elephant flows" regime where a handful of requests carry most
/// of the bytes.
pub struct ParetoSizes {
    rng: StdRng,
    scale: f64,
    inv_alpha: f64,
    max_bytes: u64,
}

impl ParetoSizes {
    /// Sizes at least `scale_bytes`, tail exponent `alpha`, capped at
    /// `max_bytes`.
    pub fn new(scale_bytes: f64, alpha: f64, max_bytes: u64, seed: u64) -> Self {
        ParetoSizes {
            rng: StdRng::seed_from_u64(seed),
            scale: scale_bytes.max(1.0),
            inv_alpha: 1.0 / alpha.max(f64::MIN_POSITIVE),
            max_bytes: max_bytes.max(1),
        }
    }

    /// Draw one payload size in bytes.
    pub fn sample(&mut self) -> u64 {
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let v = self.scale / u.powf(self.inv_alpha);
        (v as u64).clamp(1, self.max_bytes)
    }
}

/// Weighted multi-tenant attribution: each draw picks a tenant index
/// with probability proportional to its weight. A hostile tenant is
/// modelled upstream by giving it a dominant weight (or its own
/// arrival process) and letting admission control defend the rest.
pub struct TenantMix {
    rng: StdRng,
    cumulative: Vec<u64>,
    total: u64,
}

impl TenantMix {
    /// A mix over `weights.len()` tenants; zero-weight tenants are
    /// never drawn.
    pub fn new(weights: &[u32], seed: u64) -> Self {
        assert!(!weights.is_empty(), "a tenant mix needs tenants");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0u64;
        for &w in weights {
            acc += w as u64;
            cumulative.push(acc);
        }
        assert!(acc > 0, "a tenant mix needs positive total weight");
        TenantMix {
            rng: StdRng::seed_from_u64(seed),
            cumulative,
            total: acc,
        }
    }

    /// Number of tenants in the mix.
    pub fn tenants(&self) -> usize {
        self.cumulative.len()
    }

    /// Draw one tenant index in `0..tenants()`.
    pub fn sample(&mut self) -> usize {
        let u = self.rng.gen_range(0..self.total);
        self.cumulative.partition_point(|&c| c <= u)
    }
}

/// One scheduled request: when it must start (open-loop — the harness
/// sends at this instant no matter how the previous requests fared),
/// which servable rank it targets, which tenant it bills to, and how
/// many payload bytes it carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestSpec {
    /// Intended start on the virtual schedule clock.
    pub at: SimTime,
    /// Servable rank (index into the scenario's catalog).
    pub servable: usize,
    /// Tenant index (index into the scenario's tenant list).
    pub tenant: usize,
    /// Payload size in bytes.
    pub payload_bytes: u64,
}

/// A fully materialized open-loop request schedule: the pure-function
/// output of seed + scenario parameters that a bench replays against
/// the real stack.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkloadSchedule {
    /// Requests in non-decreasing `at` order.
    pub requests: Vec<RequestSpec>,
}

impl WorkloadSchedule {
    /// Number of scheduled requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// FNV-1a fingerprint over every field of every request, in
    /// order. Two runs with the same seed must produce the same
    /// fingerprint — the bench harness and CI's seed matrix assert
    /// exactly this, making "byte-identical schedule" checkable
    /// without shipping the schedule itself.
    pub fn fingerprint(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for r in &self.requests {
            mix(r.at.0);
            mix(r.servable as u64);
            mix(r.tenant as u64);
            mix(r.payload_bytes);
        }
        hash
    }
}

/// Materialize a schedule: arrivals from `arrivals` up to (excluding)
/// `horizon`, each annotated by the servable, tenant and payload
/// samplers. With seeded inputs the output is a pure function of the
/// seeds.
pub fn build_schedule(
    arrivals: &mut dyn ArrivalProcess,
    horizon: SimTime,
    mut servable_of: impl FnMut() -> usize,
    mut tenant_of: impl FnMut() -> usize,
    mut payload_of: impl FnMut() -> u64,
) -> WorkloadSchedule {
    let mut requests = Vec::new();
    while let Some(at) = arrivals.next_arrival() {
        if at >= horizon {
            break;
        }
        requests.push(RequestSpec {
            at,
            servable: servable_of(),
            tenant: tenant_of(),
            payload_bytes: payload_of(),
        });
    }
    WorkloadSchedule { requests }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(seed: u64, rate: f64, secs: u64) -> Vec<u64> {
        let mut w = PoissonArrivals::new(rate, seed);
        (0..secs)
            .map(|s| w.count_until(SimTime((s + 1) * 1_000_000_000)))
            .collect()
    }

    #[test]
    fn same_seed_replays_identical_arrivals() {
        assert_eq!(counts(7, 20.0, 60), counts(7, 20.0, 60));
        assert_ne!(counts(7, 20.0, 60), counts(8, 20.0, 60));
    }

    #[test]
    fn mean_rate_converges_to_lambda() {
        let total: u64 = counts(1848, 50.0, 200).iter().sum();
        let mean = total as f64 / 200.0;
        assert!((mean - 50.0).abs() < 2.5, "mean {mean}");
    }

    #[test]
    fn zero_rate_is_silent_until_changed() {
        let mut w = PoissonArrivals::new(0.0, 3);
        assert_eq!(w.count_until(SimTime(10_000_000_000)), 0);
        assert_eq!(w.peek(), None);
        w.set_rate(100.0);
        let burst = w.count_until(SimTime(20_000_000_000));
        assert!(burst > 500, "burst {burst}");
    }

    #[test]
    fn arrival_times_are_monotone() {
        let mut w = PoissonArrivals::new(30.0, 11);
        let mut last = SimTime::ZERO;
        for _ in 0..100 {
            let at = w.pop().unwrap();
            assert!(at >= last);
            last = at;
        }
    }

    /// Per-second arrival counts over `secs` virtual seconds.
    fn binned(arrivals: &mut dyn ArrivalProcess, secs: u64) -> Vec<u64> {
        let mut bins = vec![0u64; secs as usize];
        while let Some(at) = arrivals.next_arrival() {
            let s = (at.0 / 1_000_000_000) as usize;
            if s >= bins.len() {
                break;
            }
            bins[s] += 1;
        }
        bins
    }

    /// Index of dispersion (variance over mean) of the bin counts —
    /// 1 for Poisson, ≫ 1 for bursty processes.
    fn dispersion(bins: &[u64]) -> f64 {
        let n = bins.len() as f64;
        let mean = bins.iter().sum::<u64>() as f64 / n;
        let var = bins
            .iter()
            .map(|&b| (b as f64 - mean) * (b as f64 - mean))
            .sum::<f64>()
            / n;
        var / mean.max(f64::MIN_POSITIVE)
    }

    #[test]
    fn mmpp_is_overdispersed_against_a_poisson_baseline() {
        // MMPP spends ~25 s calm at 5/s, ~5 s bursting at 200/s; a
        // Poisson process at the same long-run mean must show an index
        // of dispersion near 1 while the MMPP's is an order of
        // magnitude larger.
        let mut mmpp = MmppArrivals::new(5.0, 200.0, 25.0, 5.0, 1848);
        let mmpp_bins = binned(&mut mmpp, 600);
        let mean_rate = mmpp_bins.iter().sum::<u64>() as f64 / 600.0;
        let mut poisson = PoissonArrivals::new(mean_rate, 1848);
        let poisson_bins = binned(&mut poisson, 600);
        let mmpp_d = dispersion(&mmpp_bins);
        let poisson_d = dispersion(&poisson_bins);
        assert!(poisson_d < 2.0, "poisson dispersion {poisson_d}");
        assert!(
            mmpp_d > 10.0 * poisson_d,
            "mmpp {mmpp_d} vs poisson {poisson_d}"
        );
        // Determinism: the same seed replays the same bursts.
        let mut again = MmppArrivals::new(5.0, 200.0, 25.0, 5.0, 1848);
        assert_eq!(binned(&mut again, 600), mmpp_bins);
    }

    #[test]
    fn diurnal_rate_swings_between_peak_and_trough() {
        // One 200 s period with amplitude 0.8: the quarter around the
        // sine peak must see several times the arrivals of the
        // quarter around the trough.
        let mut d = DiurnalArrivals::new(50.0, 0.8, 200.0, 7);
        let bins = binned(&mut d, 200);
        let peak: u64 = bins[25..75].iter().sum();
        let trough: u64 = bins[125..175].iter().sum();
        assert!(
            peak as f64 > 3.0 * trough as f64,
            "peak {peak} trough {trough}"
        );
        // The analytic rate agrees with where the mass landed.
        let d2 = DiurnalArrivals::new(50.0, 0.8, 200.0, 7);
        assert!(d2.rate_at(SimTime(50 * 1_000_000_000)) > d2.rate_at(SimTime(150 * 1_000_000_000)));
    }

    #[test]
    fn zipf_rank_frequency_follows_the_power_law() {
        let mut z = ZipfPopularity::new(1000, 1.0, 3141);
        let mut counts = vec![0u64; 1000];
        for _ in 0..200_000 {
            counts[z.sample()] += 1;
        }
        // Rank 0 over rank 9 approximates 10 under exponent 1.0.
        let ratio = counts[0] as f64 / counts[9].max(1) as f64;
        assert!((6.0..16.0).contains(&ratio), "rank0/rank9 {ratio}");
        // The head dominates: top 10 ranks out of 1000 carry over a
        // third of the traffic.
        let head: u64 = counts[..10].iter().sum();
        assert!(head > 200_000 / 3, "head {head}");
        // Long tail is still reachable.
        assert!(counts[500..].iter().sum::<u64>() > 0);
    }

    #[test]
    fn payload_sizes_are_heavy_tailed_and_deterministic() {
        let draw = |mut s: LognormalSizes| (0..20_000).map(|_| s.sample()).collect::<Vec<_>>();
        let a = draw(LognormalSizes::new(4096.0, 1.5, 1 << 24, 7));
        let b = draw(LognormalSizes::new(4096.0, 1.5, 1 << 24, 7));
        assert_eq!(a, b, "same seed, same sizes");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        let p50 = sorted[sorted.len() / 2];
        let p99 = sorted[sorted.len() * 99 / 100];
        assert!((2048..8192).contains(&p50), "lognormal median {p50}");
        assert!(p99 as f64 > 5.0 * p50 as f64, "p99 {p99} p50 {p50}");

        let mut pareto = ParetoSizes::new(512.0, 1.2, 1 << 24, 7);
        let mut sizes: Vec<u64> = (0..20_000).map(|_| pareto.sample()).collect();
        sizes.sort_unstable();
        let p50 = sizes[sizes.len() / 2];
        let p99 = sizes[sizes.len() * 99 / 100];
        assert!(p50 >= 512, "pareto floor {p50}");
        assert!(p99 as f64 > 5.0 * p50 as f64, "p99 {p99} p50 {p50}");
    }

    #[test]
    fn tenant_mix_respects_weights() {
        let mut mix = TenantMix::new(&[6, 3, 1], 7);
        let mut counts = [0u64; 3];
        for _ in 0..60_000 {
            counts[mix.sample()] += 1;
        }
        assert!(counts[0] > counts[1] && counts[1] > counts[2], "{counts:?}");
        let share0 = counts[0] as f64 / 60_000.0;
        assert!((share0 - 0.6).abs() < 0.02, "share0 {share0}");
    }

    #[test]
    fn schedules_are_byte_identical_per_seed() {
        let make = |seed: u64| {
            let mut arrivals = MmppArrivals::new(20.0, 300.0, 10.0, 2.0, seed);
            let mut zipf = ZipfPopularity::new(500, 1.1, seed ^ 1);
            let mut tenants = TenantMix::new(&[4, 2, 1], seed ^ 2);
            let mut sizes = LognormalSizes::new(2048.0, 1.2, 1 << 20, seed ^ 3);
            build_schedule(
                &mut arrivals,
                SimTime(30 * 1_000_000_000),
                || zipf.sample(),
                || tenants.sample(),
                || sizes.sample(),
            )
        };
        let a = make(7);
        let b = make(7);
        assert!(!a.is_empty());
        assert_eq!(a, b, "same seed, same schedule, byte for byte");
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = make(8);
        assert_ne!(a.fingerprint(), c.fingerprint(), "seeds must matter");
        // Arrival order is non-decreasing — the open-loop driver
        // replays the schedule front to back.
        assert!(a.requests.windows(2).all(|w| w[0].at <= w[1].at));
    }
}
