//! Seeded synthetic workloads on the virtual clock.
//!
//! The control-loop test battery needs open-loop arrival processes
//! that are a pure function of a seed: replaying the same seed must
//! hand the reconciler byte-identical inputs, tick for tick. A
//! [`PoissonArrivals`] generator draws exponential inter-arrival gaps
//! from a seeded [`StdRng`] and bins them onto whatever tick grid the
//! harness walks; [`set_rate`](PoissonArrivals::set_rate) changes the
//! intensity mid-run (ramps, bursts, idle phases) without breaking
//! determinism — the memoryless property means the process simply
//! restarts from the current cursor.

use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded Poisson arrival process on virtual time.
pub struct PoissonArrivals {
    rng: StdRng,
    rate_per_sec: f64,
    /// Virtual time consumed so far; arrivals before this are spent.
    cursor: SimTime,
    /// First arrival at or after `cursor`, if already drawn.
    next: Option<SimTime>,
}

impl PoissonArrivals {
    /// A process emitting `rate_per_sec` arrivals per virtual second
    /// on average, fully determined by `seed`.
    pub fn new(rate_per_sec: f64, seed: u64) -> Self {
        PoissonArrivals {
            rng: StdRng::seed_from_u64(seed),
            rate_per_sec,
            cursor: SimTime::ZERO,
            next: None,
        }
    }

    /// Change the intensity from the current cursor onward. The
    /// pending arrival (drawn at the old rate) is discarded: a Poisson
    /// process is memoryless, so resampling from the cursor is
    /// indistinguishable from conditioning on "no arrival yet".
    pub fn set_rate(&mut self, rate_per_sec: f64) {
        self.rate_per_sec = rate_per_sec;
        self.next = None;
    }

    /// Current intensity in arrivals per virtual second.
    pub fn rate(&self) -> f64 {
        self.rate_per_sec
    }

    /// Exponential gap to the next arrival, `None` while the rate is
    /// zero (the process is silent until the rate changes).
    fn sample_gap(&mut self) -> Option<SimTime> {
        if self.rate_per_sec <= 0.0 {
            return None;
        }
        let u: f64 = self.rng.gen_range(0.0..1.0);
        let secs = -(1.0 - u).ln() / self.rate_per_sec;
        Some(SimTime((secs * 1e9) as u64))
    }

    /// Next arrival time at or after the cursor, without consuming it.
    pub fn peek(&mut self) -> Option<SimTime> {
        if self.next.is_none() {
            let gap = self.sample_gap()?;
            self.next = Some(self.cursor + gap);
        }
        self.next
    }

    /// Consume and return the next arrival time.
    pub fn pop(&mut self) -> Option<SimTime> {
        let at = self.peek()?;
        self.cursor = at;
        self.next = None;
        Some(at)
    }

    /// Count (and consume) every arrival strictly before `until`,
    /// advancing the cursor to `until`. This is the tick-grid view the
    /// telemetry harness feeds into a requests counter.
    pub fn count_until(&mut self, until: SimTime) -> u64 {
        let mut n = 0;
        while let Some(at) = self.peek() {
            if at >= until {
                break;
            }
            self.pop();
            n += 1;
        }
        if self.cursor < until {
            self.cursor = until;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(seed: u64, rate: f64, secs: u64) -> Vec<u64> {
        let mut w = PoissonArrivals::new(rate, seed);
        (0..secs)
            .map(|s| w.count_until(SimTime((s + 1) * 1_000_000_000)))
            .collect()
    }

    #[test]
    fn same_seed_replays_identical_arrivals() {
        assert_eq!(counts(7, 20.0, 60), counts(7, 20.0, 60));
        assert_ne!(counts(7, 20.0, 60), counts(8, 20.0, 60));
    }

    #[test]
    fn mean_rate_converges_to_lambda() {
        let total: u64 = counts(1848, 50.0, 200).iter().sum();
        let mean = total as f64 / 200.0;
        assert!((mean - 50.0).abs() < 2.5, "mean {mean}");
    }

    #[test]
    fn zero_rate_is_silent_until_changed() {
        let mut w = PoissonArrivals::new(0.0, 3);
        assert_eq!(w.count_until(SimTime(10_000_000_000)), 0);
        assert_eq!(w.peek(), None);
        w.set_rate(100.0);
        let burst = w.count_until(SimTime(20_000_000_000));
        assert!(burst > 500, "burst {burst}");
    }

    #[test]
    fn arrival_times_are_monotone() {
        let mut w = PoissonArrivals::new(30.0, 11);
        let mut last = SimTime::ZERO;
        for _ in 0..100 {
            let at = w.pop().unwrap();
            assert!(at >= last);
            last = at;
        }
    }
}
