//! Property tests of the discrete-event queueing model against
//! closed-form bounds.

use dlhub_sim::engine::Sim;
use dlhub_sim::queueing::FifoServer;
use dlhub_sim::time::SimTime;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All jobs complete, and the makespan is bracketed by the ideal
    /// parallel bound (total work / capacity) and the serial bound
    /// (total work), for simultaneous arrivals.
    #[test]
    fn makespan_is_bracketed(
        services in proptest::collection::vec(1u64..50, 1..40),
        capacity in 1usize..8,
    ) {
        let mut sim = Sim::new();
        let pool = FifoServer::new(capacity);
        for (id, ms) in services.iter().enumerate() {
            pool.submit(&mut sim, id as u64, SimTime::from_millis(*ms as f64));
        }
        sim.run();
        let completions = pool.completions();
        prop_assert_eq!(completions.len(), services.len());
        let total_ms: u64 = services.iter().sum();
        let longest = *services.iter().max().unwrap();
        let makespan = pool.makespan().as_millis();
        let lower = (total_ms as f64 / capacity as f64).max(longest as f64);
        prop_assert!(makespan + 1e-6 >= lower, "makespan {makespan} < bound {lower}");
        prop_assert!(makespan <= total_ms as f64 + 1e-6);
    }

    /// Work conservation with one server: the makespan equals the
    /// total service demand exactly (no idling while work waits).
    #[test]
    fn single_server_is_work_conserving(
        services in proptest::collection::vec(1u64..40, 1..30)
    ) {
        let mut sim = Sim::new();
        let pool = FifoServer::new(1);
        for (id, ms) in services.iter().enumerate() {
            pool.submit(&mut sim, id as u64, SimTime::from_millis(*ms as f64));
        }
        sim.run();
        let total: u64 = services.iter().sum();
        prop_assert_eq!(pool.makespan(), SimTime::from_millis(total as f64));
        // And completion order is submission order (FIFO).
        let order: Vec<u64> = pool.completions().iter().map(|(id, _)| *id).collect();
        let expected: Vec<u64> = (0..services.len() as u64).collect();
        prop_assert_eq!(order, expected);
    }

    /// Adding capacity never hurts: makespan is monotonically
    /// non-increasing in the number of servers.
    #[test]
    fn more_servers_never_slower(
        services in proptest::collection::vec(1u64..40, 1..30),
        c1 in 1usize..6,
        extra in 1usize..4,
    ) {
        let run = |capacity: usize| {
            let mut sim = Sim::new();
            let pool = FifoServer::new(capacity);
            for (id, ms) in services.iter().enumerate() {
                pool.submit(&mut sim, id as u64, SimTime::from_millis(*ms as f64));
            }
            sim.run();
            pool.makespan()
        };
        prop_assert!(run(c1 + extra) <= run(c1));
    }
}

#[test]
fn simulated_mm1_queue_grows_with_utilization() {
    // Deterministic arrivals at fixed spacing; service = spacing * rho.
    // Mean completion latency should increase with rho and stay finite
    // under rho < 1 — a smoke test that the queueing model behaves
    // like a queue, not a delay line.
    let latency_at = |rho: f64| {
        let mut sim = Sim::new();
        let pool = FifoServer::new(1);
        let spacing = SimTime::from_millis(10.0);
        let service = SimTime::from_millis(10.0 * rho);
        let n = 200u64;
        for i in 0..n {
            let pool = pool.clone();
            sim.schedule_at(SimTime(spacing.0 * i), move |sim| {
                pool.submit(sim, i, service);
            });
        }
        sim.run();
        let completions = pool.completions();
        let total_latency: f64 = completions
            .iter()
            .map(|(id, done)| done.as_millis() - (10.0 * *id as f64))
            .sum();
        total_latency / n as f64
    };
    let low = latency_at(0.3);
    let high = latency_at(0.95);
    assert!(low < high, "latency must grow with utilization");
    // Deterministic D/D/1 with rho<1 never queues: latency == service.
    assert!((low - 3.0).abs() < 1e-6, "D/D/1 low-rho latency {low}");
    assert!((high - 9.5).abs() < 1e-6, "D/D/1 high-rho latency {high}");
}
