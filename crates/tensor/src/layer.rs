//! Layer definitions.

use crate::ops;
use crate::tensor::Tensor;

/// One network layer. Weights are owned inline; networks are built
/// once and shared behind `Arc` by the serving stack.
#[derive(Debug, Clone)]
pub enum Layer {
    /// 2-D convolution: `weights` is `c_out × (c_in*kh*kw)` row-major.
    Conv2d {
        /// Filter bank.
        weights: Vec<f32>,
        /// Per-output-channel bias.
        bias: Vec<f32>,
        /// Output channels.
        c_out: usize,
        /// Kernel height.
        kh: usize,
        /// Kernel width.
        kw: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        padding: usize,
    },
    /// Max pooling.
    MaxPool {
        /// Window size.
        size: usize,
        /// Stride.
        stride: usize,
    },
    /// Average pooling.
    AvgPool {
        /// Window size.
        size: usize,
        /// Stride.
        stride: usize,
    },
    /// Global average pooling (CHW → C).
    GlobalAvgPool,
    /// Fully connected: `weights` is `out × in` row-major.
    Dense {
        /// Weight matrix.
        weights: Vec<f32>,
        /// Bias vector.
        bias: Vec<f32>,
        /// Output width.
        out: usize,
        /// Input width.
        input: usize,
    },
    /// Rectified linear activation.
    ReLU,
    /// Softmax over a 1-D tensor.
    Softmax,
    /// Inference-mode batch normalization (per CHW channel).
    BatchNorm {
        /// Scale.
        gamma: Vec<f32>,
        /// Shift.
        beta: Vec<f32>,
        /// Running mean.
        mean: Vec<f32>,
        /// Running variance.
        var: Vec<f32>,
    },
    /// Flatten CHW to a vector.
    Flatten,
}

impl Layer {
    /// Apply the layer.
    pub fn forward(&self, input: Tensor) -> Tensor {
        match self {
            Layer::Conv2d {
                weights,
                bias,
                c_out,
                kh,
                kw,
                stride,
                padding,
            } => ops::conv2d(&input, weights, bias, *c_out, *kh, *kw, *stride, *padding),
            Layer::MaxPool { size, stride } => ops::maxpool2d(&input, *size, *stride),
            Layer::AvgPool { size, stride } => ops::avgpool2d(&input, *size, *stride),
            Layer::GlobalAvgPool => ops::global_avgpool(&input),
            Layer::Dense {
                weights,
                bias,
                out,
                input: in_w,
            } => {
                let x = input.data();
                assert_eq!(x.len(), *in_w, "dense input width mismatch");
                let mut y = ops::matvec(weights, x, *out, *in_w);
                for (v, b) in y.iter_mut().zip(bias) {
                    *v += b;
                }
                Tensor::from_vec(y)
            }
            Layer::ReLU => {
                let mut t = input;
                ops::relu(&mut t);
                t
            }
            Layer::Softmax => {
                let mut t = input;
                ops::softmax(&mut t);
                t
            }
            Layer::BatchNorm {
                gamma,
                beta,
                mean,
                var,
            } => {
                let mut t = input;
                ops::batchnorm(&mut t, gamma, beta, mean, var);
                t
            }
            Layer::Flatten => {
                let len = input.len();
                input.reshape(vec![len]).expect("flatten preserves length")
            }
        }
    }

    /// Number of learned parameters in the layer.
    pub fn param_count(&self) -> usize {
        match self {
            Layer::Conv2d { weights, bias, .. } | Layer::Dense { weights, bias, .. } => {
                weights.len() + bias.len()
            }
            Layer::BatchNorm { gamma, .. } => gamma.len() * 4,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_layer_applies_bias() {
        let layer = Layer::Dense {
            weights: vec![1.0, 0.0, 0.0, 1.0],
            bias: vec![10.0, 20.0],
            out: 2,
            input: 2,
        };
        let y = layer.forward(Tensor::from_vec(vec![3.0, 4.0]));
        assert_eq!(y.data(), &[13.0, 24.0]);
    }

    #[test]
    fn flatten_reshapes() {
        let t = Tensor::zeros(vec![2, 3, 4]);
        let y = Layer::Flatten.forward(t);
        assert_eq!(y.shape(), &[24]);
    }

    #[test]
    fn param_counts() {
        let conv = Layer::Conv2d {
            weights: vec![0.0; 27],
            bias: vec![0.0; 3],
            c_out: 3,
            kh: 3,
            kw: 3,
            stride: 1,
            padding: 0,
        };
        assert_eq!(conv.param_count(), 30);
        assert_eq!(Layer::ReLU.param_count(), 0);
        let bn = Layer::BatchNorm {
            gamma: vec![1.0; 8],
            beta: vec![0.0; 8],
            mean: vec![0.0; 8],
            var: vec![1.0; 8],
        };
        assert_eq!(bn.param_count(), 32);
    }
}
