#![warn(missing_docs)]

//! # dlhub-tensor
//!
//! A small, real neural-network inference engine, built to stand in for
//! the TensorFlow/Keras runtimes that execute DLHub's image servables.
//!
//! The paper's evaluation (§V-A) serves Google's Inception-v3 and a
//! multi-layer CNN trained on CIFAR-10. We cannot embed TensorFlow, so
//! this crate implements the actual math natively — `im2col` + GEMM
//! convolutions (Rayon-parallel), pooling, dense layers, batch
//! normalization, softmax and Inception-style parallel branch blocks —
//! and provides builders for two deterministic networks:
//!
//! * [`models::inception`] — an Inception-v3-shaped classifier
//!   (stem convolutions, four inception modules with parallel 1×1/3×3/
//!   5×5/pool branches, global average pooling, 1000-way softmax).
//! * [`models::cifar10`] — the common CIFAR-10 benchmark CNN
//!   (32×32×3 input, 10-way softmax).
//!
//! Weights are pseudo-random from a fixed seed: classification output
//! is meaningless, but the *compute cost* — which is what the serving
//! experiments measure — is real and of the right relative magnitude
//! (Inception ≫ CIFAR-10 ≫ noop), as documented in `DESIGN.md`.

pub mod layer;
pub mod models;
pub mod network;
pub mod ops;
pub mod tensor;
pub mod train;

pub use layer::Layer;
pub use network::{Block, Network};
pub use tensor::{Tensor, TensorError};
pub use train::{TrainError, Trainable};
