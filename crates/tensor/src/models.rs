//! Deterministic model builders for the paper's two image servables.
//!
//! Weights come from a seeded RNG: predictions are meaningless but the
//! arithmetic cost is real, which is what the serving experiments
//! measure (see DESIGN.md, "Substitutions"). Channel counts are scaled
//! down from the originals so a single inference lands in the tens of
//! milliseconds on commodity CPUs — the same envelope as the paper's
//! TensorFlow deployments — while preserving the Inception ≫ CIFAR-10
//! cost ratio.

use crate::layer::Layer;
use crate::network::{Block, Network};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Weight initializer: uniform in ±sqrt(6/(fan_in+fan_out)) (Glorot).
fn glorot(rng: &mut StdRng, fan_in: usize, fan_out: usize, n: usize) -> Vec<f32> {
    let limit = (6.0 / (fan_in + fan_out) as f64).sqrt() as f32;
    (0..n).map(|_| rng.gen_range(-limit..limit)).collect()
}

fn conv(
    rng: &mut StdRng,
    c_in: usize,
    c_out: usize,
    k: usize,
    stride: usize,
    padding: usize,
) -> Layer {
    let fan_in = c_in * k * k;
    Layer::Conv2d {
        weights: glorot(rng, fan_in, c_out, c_out * fan_in),
        bias: vec![0.0; c_out],
        c_out,
        kh: k,
        kw: k,
        stride,
        padding,
    }
}

fn dense(rng: &mut StdRng, input: usize, out: usize) -> Layer {
    Layer::Dense {
        weights: glorot(rng, input, out, input * out),
        bias: vec![0.0; out],
        out,
        input,
    }
}

fn batchnorm(rng: &mut StdRng, c: usize) -> Layer {
    Layer::BatchNorm {
        gamma: (0..c).map(|_| rng.gen_range(0.8..1.2)).collect(),
        beta: vec![0.0; c],
        mean: vec![0.0; c],
        var: vec![1.0; c],
    }
}

/// An Inception module: four parallel branches (1×1, 1×1→5×5,
/// 1×1→3×3→3×3, 3×3 pool-proxy) concatenated along channels, exactly
/// the Inception-A topology with the average-pool branch realized as a
/// stride-1 padded convolution.
#[allow(clippy::too_many_arguments)] // mirrors the module's 7 channel widths
fn inception_module(
    rng: &mut StdRng,
    c_in: usize,
    b1: usize,
    b2_mid: usize,
    b2: usize,
    b3_mid: usize,
    b3: usize,
    b4: usize,
) -> Block {
    Block::Branches(vec![
        vec![conv(rng, c_in, b1, 1, 1, 0), Layer::ReLU],
        vec![
            conv(rng, c_in, b2_mid, 1, 1, 0),
            Layer::ReLU,
            conv(rng, b2_mid, b2, 5, 1, 2),
            Layer::ReLU,
        ],
        vec![
            conv(rng, c_in, b3_mid, 1, 1, 0),
            Layer::ReLU,
            conv(rng, b3_mid, b3, 3, 1, 1),
            Layer::ReLU,
            conv(rng, b3, b3, 3, 1, 1),
            Layer::ReLU,
        ],
        vec![conv(rng, c_in, b4, 3, 1, 1), Layer::ReLU],
    ])
}

/// Input shape of [`inception`].
pub const INCEPTION_INPUT: [usize; 3] = [3, 149, 149];
/// Number of classes of [`inception`] (ImageNet-style).
pub const INCEPTION_CLASSES: usize = 1000;

/// Build the Inception-v3-shaped classifier ("Google's 22-layer
/// Inception-v3 model … classifies images into 1000 categories",
/// §V-A). Deterministic for a given `seed`.
pub fn inception(seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    // Stem: conv s2, conv, conv, pool — 149 -> 74 -> 36.
    let mut blocks = vec![Block::Seq(vec![
        conv(&mut rng, 3, 16, 3, 2, 0), // 16 x 74 x 74
        batchnorm(&mut rng, 16),
        Layer::ReLU,
        conv(&mut rng, 16, 24, 3, 1, 1),
        batchnorm(&mut rng, 24),
        Layer::ReLU,
        Layer::MaxPool { size: 3, stride: 2 }, // 24 x 36 x 36
        conv(&mut rng, 24, 40, 1, 1, 0),
        Layer::ReLU,
        conv(&mut rng, 40, 96, 3, 1, 1),
        batchnorm(&mut rng, 96),
        Layer::ReLU,
        Layer::MaxPool { size: 3, stride: 2 }, // 96 x 17 x 17
    ])];
    // Three Inception-A-style modules at 17x17.
    blocks.push(inception_module(&mut rng, 96, 32, 24, 32, 32, 48, 16)); // -> 128
    blocks.push(inception_module(&mut rng, 128, 32, 24, 32, 32, 48, 16)); // -> 128
    blocks.push(inception_module(&mut rng, 128, 48, 32, 48, 40, 64, 32)); // -> 192
                                                                          // Reduction + one module at 8x8.
    blocks.push(Block::Seq(vec![Layer::MaxPool { size: 3, stride: 2 }])); // 192 x 8 x 8
    blocks.push(inception_module(&mut rng, 192, 64, 48, 64, 48, 96, 32)); // -> 256
                                                                          // Head.
    blocks.push(Block::Seq(vec![
        Layer::GlobalAvgPool,
        dense(&mut rng, 256, INCEPTION_CLASSES),
        Layer::Softmax,
    ]));
    Network::new("inception-v3", INCEPTION_INPUT.to_vec(), blocks)
}

/// Input shape of [`cifar10`].
pub const CIFAR10_INPUT: [usize; 3] = [3, 32, 32];
/// Number of classes of [`cifar10`].
pub const CIFAR10_CLASSES: usize = 10;

/// Build the multi-layer CIFAR-10 CNN ("a multi-layer convolutional
/// neural network trained on CIFAR-10 … classifies [32×32 RGB images]
/// in 10 categories", §V-A). Deterministic for a given `seed`.
pub fn cifar10(seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let blocks = vec![Block::Seq(vec![
        conv(&mut rng, 3, 32, 3, 1, 1),
        Layer::ReLU,
        conv(&mut rng, 32, 32, 3, 1, 1),
        Layer::ReLU,
        Layer::MaxPool { size: 2, stride: 2 }, // 32 x 16 x 16
        conv(&mut rng, 32, 64, 3, 1, 1),
        Layer::ReLU,
        Layer::MaxPool { size: 2, stride: 2 }, // 64 x 8 x 8
        Layer::Flatten,
        dense(&mut rng, 64 * 8 * 8, 256),
        Layer::ReLU,
        dense(&mut rng, 256, CIFAR10_CLASSES),
        Layer::Softmax,
    ])];
    Network::new("cifar10-cnn", CIFAR10_INPUT.to_vec(), blocks)
}

/// Deterministic synthetic input image for a network, varying with
/// `variant` so memoization tests can generate distinct inputs.
pub fn synthetic_image(shape: &[usize], variant: u64) -> crate::tensor::Tensor {
    let mut rng = StdRng::seed_from_u64(0x1_0000 + variant);
    let len = shape.iter().product();
    let data = (0..len).map(|_| rng.gen_range(0.0f32..1.0)).collect();
    crate::tensor::Tensor::new(shape.to_vec(), data).expect("synthetic image shape")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inception_output_is_a_distribution_over_1000() {
        let net = inception(7);
        let img = synthetic_image(&INCEPTION_INPUT, 0);
        let out = net.forward(img);
        assert_eq!(out.shape(), &[1000]);
        assert!((out.data().iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn cifar10_output_is_a_distribution_over_10() {
        let net = cifar10(7);
        let out = net.forward(synthetic_image(&CIFAR10_INPUT, 0));
        assert_eq!(out.shape(), &[10]);
        assert!((out.data().iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn models_are_deterministic_in_seed() {
        let a = inception(3).forward(synthetic_image(&INCEPTION_INPUT, 1));
        let b = inception(3).forward(synthetic_image(&INCEPTION_INPUT, 1));
        assert_eq!(a, b);
        let c = inception(4).forward(synthetic_image(&INCEPTION_INPUT, 1));
        assert_ne!(a, c);
    }

    #[test]
    fn inception_is_much_bigger_than_cifar10() {
        let big = inception(1);
        let small = cifar10(1);
        assert!(big.layer_count() > small.layer_count());
        // The paper calls Inception a 22-layer network; ours counts
        // every op but the weighted depth is comparable.
        assert!(big.layer_count() >= 22);
    }

    #[test]
    fn synthetic_images_vary_with_variant() {
        let a = synthetic_image(&CIFAR10_INPUT, 0);
        let b = synthetic_image(&CIFAR10_INPUT, 1);
        assert_ne!(a, b);
        assert_eq!(a, synthetic_image(&CIFAR10_INPUT, 0));
    }
}
