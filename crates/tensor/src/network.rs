//! Networks: sequences of blocks, where a block is either a stack of
//! layers or parallel branches concatenated along channels (the
//! Inception module pattern).

use crate::layer::Layer;
use crate::ops::concat_channels;
use crate::tensor::Tensor;

/// A network building block.
#[derive(Debug, Clone)]
pub enum Block {
    /// Sequential layers.
    Seq(Vec<Layer>),
    /// Parallel branches whose CHW outputs are concatenated along the
    /// channel axis — the Inception module structure.
    Branches(Vec<Vec<Layer>>),
}

impl Block {
    fn forward(&self, input: Tensor) -> Tensor {
        match self {
            Block::Seq(layers) => layers.iter().fold(input, |t, l| l.forward(t)),
            Block::Branches(branches) => {
                let outputs: Vec<Tensor> = branches
                    .iter()
                    .map(|branch| branch.iter().fold(input.clone(), |t, l| l.forward(t)))
                    .collect();
                concat_channels(&outputs)
            }
        }
    }

    fn param_count(&self) -> usize {
        match self {
            Block::Seq(layers) => layers.iter().map(Layer::param_count).sum(),
            Block::Branches(branches) => branches
                .iter()
                .flat_map(|b| b.iter())
                .map(Layer::param_count)
                .sum(),
        }
    }

    fn layer_count(&self) -> usize {
        match self {
            Block::Seq(layers) => layers.len(),
            Block::Branches(branches) => branches.iter().map(|b| b.len()).sum(),
        }
    }
}

/// A feed-forward network.
#[derive(Debug, Clone)]
pub struct Network {
    /// Name used by metadata and diagnostics.
    pub name: String,
    /// Expected input shape (CHW for images).
    pub input_shape: Vec<usize>,
    blocks: Vec<Block>,
}

impl Network {
    /// Assemble a network.
    pub fn new(name: impl Into<String>, input_shape: Vec<usize>, blocks: Vec<Block>) -> Self {
        Network {
            name: name.into(),
            input_shape,
            blocks,
        }
    }

    /// Run inference. Panics if the input shape mismatches (the serving
    /// layer validates shapes before dispatch).
    pub fn forward(&self, input: Tensor) -> Tensor {
        assert_eq!(
            input.shape(),
            &self.input_shape[..],
            "input shape mismatch for {}",
            self.name
        );
        self.blocks.iter().fold(input, |t, b| b.forward(t))
    }

    /// Total learned parameters.
    pub fn param_count(&self) -> usize {
        self.blocks.iter().map(Block::param_count).sum()
    }

    /// Total layers across all blocks and branches.
    pub fn layer_count(&self) -> usize {
        self.blocks.iter().map(Block::layer_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_net() -> Network {
        Network::new(
            "tiny",
            vec![1, 4, 4],
            vec![
                Block::Seq(vec![
                    Layer::Conv2d {
                        weights: vec![1.0; 4],
                        bias: vec![0.0],
                        c_out: 1,
                        kh: 2,
                        kw: 2,
                        stride: 2,
                        padding: 0,
                    },
                    Layer::ReLU,
                    Layer::Flatten,
                ]),
                Block::Seq(vec![Layer::Softmax]),
            ],
        )
    }

    #[test]
    fn forward_produces_expected_shape() {
        let net = tiny_net();
        let out = net.forward(Tensor::zeros(vec![1, 4, 4]));
        assert_eq!(out.shape(), &[4]);
        assert!((out.data().iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "input shape mismatch")]
    fn forward_rejects_wrong_shape() {
        tiny_net().forward(Tensor::zeros(vec![1, 3, 3]));
    }

    #[test]
    fn branches_concatenate_channels() {
        let branch = |scale: f32| {
            vec![Layer::Conv2d {
                weights: vec![scale],
                bias: vec![0.0],
                c_out: 1,
                kh: 1,
                kw: 1,
                stride: 1,
                padding: 0,
            }]
        };
        let net = Network::new(
            "branchy",
            vec![1, 2, 2],
            vec![Block::Branches(vec![branch(1.0), branch(2.0)])],
        );
        let out = net.forward(Tensor::new(vec![1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap());
        assert_eq!(out.shape(), &[2, 2, 2]);
        assert_eq!(out.data(), &[1.0, 2.0, 3.0, 4.0, 2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn param_and_layer_counts() {
        let net = tiny_net();
        assert_eq!(net.param_count(), 5);
        assert_eq!(net.layer_count(), 4);
    }
}
