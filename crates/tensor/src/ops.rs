//! Kernels: GEMM, im2col convolution, pooling, activations.

use crate::tensor::Tensor;
use rayon::prelude::*;

/// `C = A × B` for row-major `A (m×k)` and `B (k×n)`.
///
/// Rows of the output are computed in parallel with Rayon; within a
/// row we iterate k-outer so the inner loop is a contiguous
/// axpy over `B`'s row, which autovectorizes well.
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A has wrong length");
    assert_eq!(b.len(), k * n, "B has wrong length");
    let mut c = vec![0.0f32; m * n];
    // Parallelize only when the work amortizes thread handoff.
    if m * k * n >= 32_768 {
        c.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
            matmul_row(a, b, k, n, i, row);
        });
    } else {
        for (i, row) in c.chunks_mut(n).enumerate() {
            matmul_row(a, b, k, n, i, row);
        }
    }
    c
}

#[inline]
fn matmul_row(a: &[f32], b: &[f32], k: usize, n: usize, i: usize, row: &mut [f32]) {
    for p in 0..k {
        let aip = a[i * k + p];
        if aip == 0.0 {
            continue;
        }
        let brow = &b[p * n..(p + 1) * n];
        for (c, &bv) in row.iter_mut().zip(brow) {
            *c += aip * bv;
        }
    }
}

/// Matrix–vector product `y = W x` for row-major `W (m×n)`.
pub fn matvec(w: &[f32], x: &[f32], m: usize, n: usize) -> Vec<f32> {
    assert_eq!(w.len(), m * n);
    assert_eq!(x.len(), n);
    if m * n >= 65_536 {
        (0..m)
            .into_par_iter()
            .map(|i| dot(&w[i * n..(i + 1) * n], x))
            .collect()
    } else {
        (0..m).map(|i| dot(&w[i * n..(i + 1) * n], x)).collect()
    }
}

#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Lower a CHW image into the im2col matrix for a `kh×kw` kernel with
/// `stride` and `padding`. Output is `(c_in*kh*kw) × (oh*ow)`,
/// column-per-output-pixel, which makes convolution a single GEMM.
#[allow(clippy::too_many_arguments)]
pub fn im2col(
    input: &Tensor,
    kh: usize,
    kw: usize,
    stride: usize,
    padding: usize,
) -> (Vec<f32>, usize, usize) {
    let shape = input.shape();
    assert_eq!(shape.len(), 3, "im2col expects CHW input");
    let (c_in, h, w) = (shape[0], shape[1], shape[2]);
    let oh = (h + 2 * padding - kh) / stride + 1;
    let ow = (w + 2 * padding - kw) / stride + 1;
    let rows = c_in * kh * kw;
    let cols = oh * ow;
    let mut out = vec![0.0f32; rows * cols];
    let data = input.data();
    for c in 0..c_in {
        for ky in 0..kh {
            for kx in 0..kw {
                let row = (c * kh + ky) * kw + kx;
                let out_row = &mut out[row * cols..(row + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * stride + ky) as isize - padding as isize;
                    if iy < 0 || iy as usize >= h {
                        continue; // zero padding
                    }
                    let in_base = (c * h + iy as usize) * w;
                    for ox in 0..ow {
                        let ix = (ox * stride + kx) as isize - padding as isize;
                        if ix < 0 || ix as usize >= w {
                            continue;
                        }
                        out_row[oy * ow + ox] = data[in_base + ix as usize];
                    }
                }
            }
        }
    }
    (out, oh, ow)
}

/// 2-D convolution of a CHW `input` with `c_out` filters (weights are
/// `c_out × (c_in*kh*kw)` row-major) plus per-channel bias.
#[allow(clippy::too_many_arguments)]
pub fn conv2d(
    input: &Tensor,
    weights: &[f32],
    bias: &[f32],
    c_out: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    padding: usize,
) -> Tensor {
    let c_in = input.shape()[0];
    let (cols, oh, ow) = im2col(input, kh, kw, stride, padding);
    let k = c_in * kh * kw;
    let n = oh * ow;
    assert_eq!(weights.len(), c_out * k, "weight shape mismatch");
    assert_eq!(bias.len(), c_out, "bias shape mismatch");
    let mut out = matmul(weights, &cols, c_out, k, n);
    for (ch, chunk) in out.chunks_mut(n).enumerate() {
        let b = bias[ch];
        for v in chunk {
            *v += b;
        }
    }
    Tensor::new(vec![c_out, oh, ow], out).expect("conv output shape")
}

/// Max pooling over `size×size` windows with `stride`.
pub fn maxpool2d(input: &Tensor, size: usize, stride: usize) -> Tensor {
    let shape = input.shape();
    let (c, h, w) = (shape[0], shape[1], shape[2]);
    let oh = (h - size) / stride + 1;
    let ow = (w - size) / stride + 1;
    let mut out = vec![f32::NEG_INFINITY; c * oh * ow];
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut m = f32::NEG_INFINITY;
                for ky in 0..size {
                    for kx in 0..size {
                        m = m.max(input.at_chw(ch, oy * stride + ky, ox * stride + kx));
                    }
                }
                out[(ch * oh + oy) * ow + ox] = m;
            }
        }
    }
    Tensor::new(vec![c, oh, ow], out).expect("pool output shape")
}

/// Average pooling over `size×size` windows with `stride`.
pub fn avgpool2d(input: &Tensor, size: usize, stride: usize) -> Tensor {
    let shape = input.shape();
    let (c, h, w) = (shape[0], shape[1], shape[2]);
    let oh = (h - size) / stride + 1;
    let ow = (w - size) / stride + 1;
    let denom = (size * size) as f32;
    let mut out = vec![0.0f32; c * oh * ow];
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut s = 0.0;
                for ky in 0..size {
                    for kx in 0..size {
                        s += input.at_chw(ch, oy * stride + ky, ox * stride + kx);
                    }
                }
                out[(ch * oh + oy) * ow + ox] = s / denom;
            }
        }
    }
    Tensor::new(vec![c, oh, ow], out).expect("pool output shape")
}

/// Global average pooling: CHW -> C.
pub fn global_avgpool(input: &Tensor) -> Tensor {
    let shape = input.shape();
    let (c, h, w) = (shape[0], shape[1], shape[2]);
    let plane = h * w;
    let data = input.data();
    let out: Vec<f32> = (0..c)
        .map(|ch| data[ch * plane..(ch + 1) * plane].iter().sum::<f32>() / plane as f32)
        .collect();
    Tensor::from_vec(out)
}

/// In-place ReLU.
pub fn relu(t: &mut Tensor) {
    for v in t.data_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// Numerically stable softmax over a 1-D tensor.
pub fn softmax(t: &mut Tensor) {
    let max = t
        .data()
        .iter()
        .fold(f32::NEG_INFINITY, |acc, &v| acc.max(v));
    let mut sum = 0.0;
    for v in t.data_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in t.data_mut() {
            *v /= sum;
        }
    }
}

/// In-place batch normalization (inference mode) per channel of a CHW
/// tensor: `y = gamma * (x - mean)/sqrt(var + eps) + beta`.
pub fn batchnorm(t: &mut Tensor, gamma: &[f32], beta: &[f32], mean: &[f32], var: &[f32]) {
    let shape = t.shape().to_vec();
    let (c, h, w) = (shape[0], shape[1], shape[2]);
    let plane = h * w;
    const EPS: f32 = 1e-5;
    let data = t.data_mut();
    for ch in 0..c {
        let scale = gamma[ch] / (var[ch] + EPS).sqrt();
        let shift = beta[ch] - mean[ch] * scale;
        for v in &mut data[ch * plane..(ch + 1) * plane] {
            *v = *v * scale + shift;
        }
    }
}

/// Concatenate CHW tensors along the channel axis; all must share H×W.
pub fn concat_channels(parts: &[Tensor]) -> Tensor {
    assert!(!parts.is_empty());
    let h = parts[0].shape()[1];
    let w = parts[0].shape()[2];
    let total_c: usize = parts
        .iter()
        .map(|p| {
            assert_eq!(p.shape()[1], h, "height mismatch in concat");
            assert_eq!(p.shape()[2], w, "width mismatch in concat");
            p.shape()[0]
        })
        .sum();
    let mut data = Vec::with_capacity(total_c * h * w);
    for p in parts {
        data.extend_from_slice(p.data());
    }
    Tensor::new(vec![total_c, h, w], data).expect("concat shape")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matmul_small_known() {
        // [1 2; 3 4] x [5 6; 7 8] = [19 22; 43 50]
        let c = matmul(&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0], 2, 2, 2);
        assert_eq!(c, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_parallel_matches_serial() {
        // Big enough to trigger the parallel path.
        let m = 64;
        let k = 64;
        let n = 64;
        let a: Vec<f32> = (0..m * k).map(|i| (i % 7) as f32 - 3.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 5) as f32 - 2.0).collect();
        let par = matmul(&a, &b, m, k, n);
        // Serial reference.
        let mut ser = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    ser[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        assert_eq!(par, ser);
    }

    #[test]
    fn matvec_matches_matmul() {
        let w: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let x = vec![1.0, 0.5, -1.0, 2.0];
        let y = matvec(&w, &x, 3, 4);
        let y2 = matmul(&w, &x, 3, 4, 1);
        assert_eq!(y, y2);
    }

    #[test]
    fn conv2d_identity_kernel() {
        // A 1x1 identity kernel must reproduce the input.
        let input = Tensor::new(vec![1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let out = conv2d(&input, &[1.0], &[0.0], 1, 1, 1, 1, 0);
        assert_eq!(out, input);
    }

    #[test]
    fn conv2d_known_3x3() {
        // 3x3 input, 3x3 averaging-ish kernel of ones, no padding:
        // output is the sum of all 9 elements.
        let input = Tensor::new(vec![1, 3, 3], (1..=9).map(|v| v as f32).collect()).unwrap();
        let out = conv2d(&input, &[1.0; 9], &[0.0], 1, 3, 3, 1, 0);
        assert_eq!(out.shape(), &[1, 1, 1]);
        assert_eq!(out.data()[0], 45.0);
    }

    #[test]
    fn conv2d_padding_keeps_size() {
        let input = Tensor::new(vec![1, 4, 4], vec![1.0; 16]).unwrap();
        let out = conv2d(&input, &[1.0; 9], &[0.0], 1, 3, 3, 1, 1);
        assert_eq!(out.shape(), &[1, 4, 4]);
        // Corner sees only 4 ones; centre sees 9.
        assert_eq!(out.at_chw(0, 0, 0), 4.0);
        assert_eq!(out.at_chw(0, 1, 1), 9.0);
    }

    #[test]
    fn conv2d_stride_and_bias() {
        let input = Tensor::new(vec![1, 4, 4], (0..16).map(|v| v as f32).collect()).unwrap();
        let out = conv2d(&input, &[1.0, 0.0, 0.0, 0.0], &[10.0], 1, 2, 2, 2, 0);
        assert_eq!(out.shape(), &[1, 2, 2]);
        // Picks the top-left of each 2x2 window, plus bias.
        assert_eq!(out.data(), &[10.0, 12.0, 18.0, 20.0]);
    }

    #[test]
    fn conv2d_multi_channel_sums_inputs() {
        // Two input channels, kernel of ones: output = c0 + c1 per pixel.
        let input = Tensor::new(
            vec![2, 2, 2],
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0],
        )
        .unwrap();
        let out = conv2d(&input, &[1.0, 1.0], &[0.0], 1, 1, 1, 1, 0);
        assert_eq!(out.data(), &[11.0, 22.0, 33.0, 44.0]);
    }

    #[test]
    fn maxpool_known() {
        let input = Tensor::new(vec![1, 4, 4], (0..16).map(|v| v as f32).collect()).unwrap();
        let out = maxpool2d(&input, 2, 2);
        assert_eq!(out.shape(), &[1, 2, 2]);
        assert_eq!(out.data(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn avgpool_known() {
        let input = Tensor::new(vec![1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let out = avgpool2d(&input, 2, 2);
        assert_eq!(out.data(), &[2.5]);
    }

    #[test]
    fn global_avgpool_reduces_planes() {
        let input =
            Tensor::new(vec![2, 2, 2], vec![1.0, 1.0, 1.0, 1.0, 2.0, 4.0, 6.0, 8.0]).unwrap();
        let out = global_avgpool(&input);
        assert_eq!(out.shape(), &[2]);
        assert_eq!(out.data(), &[1.0, 5.0]);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut t = Tensor::from_vec(vec![-1.0, 0.0, 2.0]);
        relu(&mut t);
        assert_eq!(t.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut t = Tensor::from_vec(vec![1.0, 2.0, 3.0]);
        softmax(&mut t);
        let sum: f32 = t.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(t.data()[2] > t.data()[1] && t.data()[1] > t.data()[0]);
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let mut t = Tensor::from_vec(vec![1000.0, 1001.0]);
        softmax(&mut t);
        assert!(t.data().iter().all(|v| v.is_finite()));
        assert!((t.data().iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn batchnorm_normalizes() {
        let mut t = Tensor::new(vec![1, 1, 2], vec![3.0, 5.0]).unwrap();
        batchnorm(&mut t, &[1.0], &[0.0], &[4.0], &[1.0]);
        assert!((t.data()[0] + 1.0).abs() < 1e-3);
        assert!((t.data()[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn concat_stacks_channels() {
        let a = Tensor::new(vec![1, 1, 2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::new(vec![2, 1, 2], vec![3.0, 4.0, 5.0, 6.0]).unwrap();
        let c = concat_channels(&[a, b]);
        assert_eq!(c.shape(), &[3, 1, 2]);
        assert_eq!(c.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    proptest! {
        #[test]
        fn softmax_is_shift_invariant(values in proptest::collection::vec(-10.0f32..10.0, 1..20), shift in -5.0f32..5.0) {
            let mut a = Tensor::from_vec(values.clone());
            let mut b = Tensor::from_vec(values.iter().map(|v| v + shift).collect());
            softmax(&mut a);
            softmax(&mut b);
            for (x, y) in a.data().iter().zip(b.data()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }

        #[test]
        fn relu_is_idempotent(values in proptest::collection::vec(-10.0f32..10.0, 0..30)) {
            let mut once = Tensor::from_vec(values);
            relu(&mut once);
            let mut twice = once.clone();
            relu(&mut twice);
            prop_assert_eq!(once, twice);
        }

        #[test]
        fn maxpool_never_below_avgpool(
            data in proptest::collection::vec(-5.0f32..5.0, 16)
        ) {
            let t = Tensor::new(vec![1, 4, 4], data).unwrap();
            let mx = maxpool2d(&t, 2, 2);
            let av = avgpool2d(&t, 2, 2);
            for (m, a) in mx.data().iter().zip(av.data()) {
                prop_assert!(m >= a);
            }
        }

        #[test]
        fn matmul_distributes_over_scaling(
            a in proptest::collection::vec(-3.0f32..3.0, 6),
            b in proptest::collection::vec(-3.0f32..3.0, 6),
            s in -2.0f32..2.0,
        ) {
            // (sA)B == s(AB)
            let scaled_a: Vec<f32> = a.iter().map(|v| v * s).collect();
            let left = matmul(&scaled_a, &b, 2, 3, 2);
            let right: Vec<f32> = matmul(&a, &b, 2, 3, 2).iter().map(|v| v * s).collect();
            for (l, r) in left.iter().zip(&right) {
                prop_assert!((l - r).abs() < 1e-3);
            }
        }
    }
}
