//! Dense row-major tensors.

use std::fmt;

/// Tensor errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Shape product does not match data length.
    ShapeMismatch {
        /// Expected element count from the shape.
        expected: usize,
        /// Actual data length.
        actual: usize,
    },
    /// Operand shapes are incompatible for the attempted operation.
    Incompatible(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, actual } => {
                write!(f, "shape expects {expected} elements, data has {actual}")
            }
            TensorError::Incompatible(msg) => write!(f, "incompatible shapes: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

/// A dense row-major `f32` tensor. Images use CHW layout
/// (channels, height, width).
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Build a tensor, validating that the shape matches the data.
    pub fn new(shape: Vec<usize>, data: Vec<f32>) -> Result<Self, TensorError> {
        let expected: usize = shape.iter().product();
        if expected != data.len() {
            return Err(TensorError::ShapeMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// A zero-filled tensor.
    pub fn zeros(shape: Vec<usize>) -> Self {
        let len = shape.iter().product();
        Tensor {
            shape,
            data: vec![0.0; len],
        }
    }

    /// A one-dimensional tensor from a vector.
    pub fn from_vec(data: Vec<f32>) -> Self {
        Tensor {
            shape: vec![data.len()],
            data,
        }
    }

    /// Shape dimensions.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for zero-element tensors.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the raw data vector.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Reinterpret with a new shape of equal element count.
    pub fn reshape(mut self, shape: Vec<usize>) -> Result<Self, TensorError> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(TensorError::ShapeMismatch {
                expected,
                actual: self.data.len(),
            });
        }
        self.shape = shape;
        Ok(self)
    }

    /// Element at (c, h, w) of a CHW tensor.
    #[inline]
    pub fn at_chw(&self, c: usize, h: usize, w: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 3);
        let (_, height, width) = (self.shape[0], self.shape[1], self.shape[2]);
        self.data[(c * height + h) * width + w]
    }

    /// Index of the maximum element (argmax); `None` when empty.
    pub fn argmax(&self) -> Option<usize> {
        self.data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
    }

    /// Indices of the `k` largest elements, descending.
    pub fn top_k(&self, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.data.len()).collect();
        idx.sort_by(|&a, &b| {
            self.data[b]
                .partial_cmp(&self.data[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_shape() {
        assert!(Tensor::new(vec![2, 3], vec![0.0; 6]).is_ok());
        assert_eq!(
            Tensor::new(vec![2, 3], vec![0.0; 5]).unwrap_err(),
            TensorError::ShapeMismatch {
                expected: 6,
                actual: 5
            }
        );
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0]);
        let t = t.reshape(vec![2, 2]).unwrap();
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.data(), &[1.0, 2.0, 3.0, 4.0]);
        assert!(t.reshape(vec![3, 2]).is_err());
    }

    #[test]
    fn chw_indexing() {
        // 2 channels of 2x3.
        let t = Tensor::new(
            vec![2, 2, 3],
            vec![
                0.0, 1.0, 2.0, //
                3.0, 4.0, 5.0, //
                6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0,
            ],
        )
        .unwrap();
        assert_eq!(t.at_chw(0, 0, 2), 2.0);
        assert_eq!(t.at_chw(0, 1, 0), 3.0);
        assert_eq!(t.at_chw(1, 0, 0), 6.0);
        assert_eq!(t.at_chw(1, 1, 2), 11.0);
    }

    #[test]
    fn argmax_and_top_k() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.5, 0.7]);
        assert_eq!(t.argmax(), Some(1));
        assert_eq!(t.top_k(3), vec![1, 3, 2]);
        assert!(Tensor::from_vec(vec![]).argmax().is_none());
    }

    #[test]
    fn zeros_has_right_len() {
        let t = Tensor::zeros(vec![3, 4, 5]);
        assert_eq!(t.len(), 60);
        assert!(t.data().iter().all(|&v| v == 0.0));
    }
}
