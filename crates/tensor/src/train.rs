//! Training: backpropagation and SGD for sequential networks.
//!
//! DLHub itself does not train (Table II), but the ecosystem around it
//! does: SageMaker "supports both the training of models and the
//! deployment of trained models", and the paper's intro lists
//! "seamless retraining and redeployment of models as new data are
//! available" among the needs DLHub serves (§I). This module provides
//! the substrate: explicit backward passes for the layer types the
//! CIFAR-10 CNN uses (convolution via im2col/col2im, dense, ReLU, max
//! pooling, flatten) with minibatch SGD + momentum and a softmax
//! cross-entropy loss. Inception-style branch blocks and batch norm
//! are inference-only (the paper never retrains Inception either).
//!
//! Gradients are verified against central finite differences in the
//! test suite.

use crate::layer::Layer;
use crate::network::{Block, Network};
use crate::ops;
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Per-layer cache recorded during the training forward pass.
enum Cache {
    /// Input to a conv layer (im2col is recomputed in backward).
    Conv { input: Tensor },
    /// Input to a dense layer.
    Dense { input: Tensor },
    /// Mask of positive activations.
    ReLU { mask: Vec<bool> },
    /// Input shape plus flat argmax index per output cell.
    MaxPool {
        input_shape: Vec<usize>,
        argmax: Vec<usize>,
    },
    /// Original shape before flattening.
    Flatten { shape: Vec<usize> },
}

/// Gradients for one layer (empty for parameter-free layers).
#[derive(Debug, Clone)]
pub struct LayerGrads {
    /// Weight gradient, matching the layer's weight layout.
    pub weights: Vec<f32>,
    /// Bias gradient.
    pub bias: Vec<f32>,
}

impl LayerGrads {
    fn empty() -> Self {
        LayerGrads {
            weights: Vec::new(),
            bias: Vec::new(),
        }
    }

    fn zeros_like(layer: &Layer) -> Self {
        match layer {
            Layer::Conv2d { weights, bias, .. } | Layer::Dense { weights, bias, .. } => {
                LayerGrads {
                    weights: vec![0.0; weights.len()],
                    bias: vec![0.0; bias.len()],
                }
            }
            _ => LayerGrads::empty(),
        }
    }

    fn accumulate(&mut self, other: &LayerGrads) {
        for (a, b) in self.weights.iter_mut().zip(&other.weights) {
            *a += b;
        }
        for (a, b) in self.bias.iter_mut().zip(&other.bias) {
            *a += b;
        }
    }

    fn scale(&mut self, factor: f32) {
        for v in &mut self.weights {
            *v *= factor;
        }
        for v in &mut self.bias {
            *v *= factor;
        }
    }
}

/// Errors from training.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// The network contains a layer with no backward implementation.
    Unsupported(&'static str),
    /// Input/label counts differ or are empty.
    BadDataset(String),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Unsupported(layer) => {
                write!(f, "no backward pass for layer type {layer}")
            }
            TrainError::BadDataset(m) => write!(f, "bad dataset: {m}"),
        }
    }
}

impl std::error::Error for TrainError {}

/// A trainable sequential network: layers + SGD momentum state.
pub struct Trainable {
    /// Expected input shape.
    pub input_shape: Vec<usize>,
    layers: Vec<Layer>,
    velocity: Vec<LayerGrads>,
}

impl Trainable {
    /// Build from layers, rejecting types without a backward pass.
    pub fn new(input_shape: Vec<usize>, layers: Vec<Layer>) -> Result<Self, TrainError> {
        for layer in &layers {
            match layer {
                Layer::Conv2d { .. }
                | Layer::Dense { .. }
                | Layer::ReLU
                | Layer::MaxPool { .. }
                | Layer::Flatten => {}
                Layer::Softmax => {
                    return Err(TrainError::Unsupported(
                        "Softmax (the loss applies it; end the network at logits)",
                    ))
                }
                Layer::BatchNorm { .. } => return Err(TrainError::Unsupported("BatchNorm")),
                Layer::AvgPool { .. } => return Err(TrainError::Unsupported("AvgPool")),
                Layer::GlobalAvgPool => return Err(TrainError::Unsupported("GlobalAvgPool")),
            }
        }
        let velocity = layers.iter().map(LayerGrads::zeros_like).collect();
        Ok(Trainable {
            input_shape,
            layers,
            velocity,
        })
    }

    /// Forward pass producing logits (no softmax).
    pub fn logits(&self, input: Tensor) -> Tensor {
        self.layers.iter().fold(input, |t, l| l.forward(t))
    }

    /// Forward pass that also records per-layer caches for backward.
    fn forward_train(&self, input: Tensor) -> (Tensor, Vec<Cache>) {
        let mut caches = Vec::with_capacity(self.layers.len());
        let mut current = input;
        for layer in &self.layers {
            match layer {
                Layer::Conv2d { .. } => {
                    caches.push(Cache::Conv {
                        input: current.clone(),
                    });
                    current = layer.forward(current);
                }
                Layer::Dense { .. } => {
                    caches.push(Cache::Dense {
                        input: current.clone(),
                    });
                    current = layer.forward(current);
                }
                Layer::ReLU => {
                    let mask: Vec<bool> = current.data().iter().map(|v| *v > 0.0).collect();
                    caches.push(Cache::ReLU { mask });
                    current = layer.forward(current);
                }
                Layer::MaxPool { size, stride } => {
                    let (pooled, argmax) = maxpool_with_argmax(&current, *size, *stride);
                    caches.push(Cache::MaxPool {
                        input_shape: current.shape().to_vec(),
                        argmax,
                    });
                    current = pooled;
                }
                Layer::Flatten => {
                    caches.push(Cache::Flatten {
                        shape: current.shape().to_vec(),
                    });
                    current = layer.forward(current);
                }
                _ => unreachable!("rejected in new()"),
            }
        }
        (current, caches)
    }

    /// Backward pass from `dlogits`, producing per-layer gradients.
    fn backward(&self, caches: &[Cache], dlogits: Tensor) -> Vec<LayerGrads> {
        let mut grads: Vec<LayerGrads> = self.layers.iter().map(LayerGrads::zeros_like).collect();
        let mut dy = dlogits;
        for (idx, layer) in self.layers.iter().enumerate().rev() {
            match (layer, &caches[idx]) {
                (
                    Layer::Dense {
                        weights,
                        out,
                        input: in_w,
                        ..
                    },
                    Cache::Dense { input },
                ) => {
                    let x = input.data();
                    let dy_v = dy.data();
                    let g = &mut grads[idx];
                    // dW[o][i] = dy[o] * x[i]; db = dy; dx = W^T dy.
                    for (o, d) in dy_v.iter().enumerate().take(*out) {
                        g.bias[o] += d;
                        let row = &mut g.weights[o * in_w..(o + 1) * in_w];
                        for (gw, xv) in row.iter_mut().zip(x) {
                            *gw += d * xv;
                        }
                    }
                    let mut dx = vec![0.0f32; *in_w];
                    for o in 0..*out {
                        let w_row = &weights[o * in_w..(o + 1) * in_w];
                        let d = dy_v[o];
                        for (dxv, wv) in dx.iter_mut().zip(w_row) {
                            *dxv += d * wv;
                        }
                    }
                    dy = Tensor::from_vec(dx)
                        .reshape(input.shape().to_vec())
                        .expect("dense dx shape");
                }
                (
                    Layer::Conv2d {
                        weights,
                        c_out,
                        kh,
                        kw,
                        stride,
                        padding,
                        ..
                    },
                    Cache::Conv { input },
                ) => {
                    let c_in = input.shape()[0];
                    let (cols, oh, ow) = ops::im2col(input, *kh, *kw, *stride, *padding);
                    let k = c_in * kh * kw;
                    let n = oh * ow;
                    let dy_mat = dy.data(); // c_out x n
                    let g = &mut grads[idx];
                    // dW = dY · cols^T  (c_out x k)
                    for co in 0..*c_out {
                        let dy_row = &dy_mat[co * n..(co + 1) * n];
                        g.bias[co] += dy_row.iter().sum::<f32>();
                        for p in 0..k {
                            let col_row = &cols[p * n..(p + 1) * n];
                            let mut acc = 0.0;
                            for (d, c) in dy_row.iter().zip(col_row) {
                                acc += d * c;
                            }
                            g.weights[co * k + p] += acc;
                        }
                    }
                    // dcols = W^T · dY  (k x n), then col2im -> dx.
                    let mut dcols = vec![0.0f32; k * n];
                    for co in 0..*c_out {
                        let dy_row = &dy_mat[co * n..(co + 1) * n];
                        let w_row = &weights[co * k..(co + 1) * k];
                        for (p, wv) in w_row.iter().enumerate() {
                            if *wv == 0.0 {
                                continue;
                            }
                            let drow = &mut dcols[p * n..(p + 1) * n];
                            for (dc, d) in drow.iter_mut().zip(dy_row) {
                                *dc += wv * d;
                            }
                        }
                    }
                    dy = col2im(&dcols, input.shape(), *kh, *kw, *stride, *padding, oh, ow);
                }
                (Layer::ReLU, Cache::ReLU { mask }) => {
                    let data = dy.data_mut();
                    for (v, keep) in data.iter_mut().zip(mask) {
                        if !keep {
                            *v = 0.0;
                        }
                    }
                }
                (
                    Layer::MaxPool { .. },
                    Cache::MaxPool {
                        input_shape,
                        argmax,
                    },
                ) => {
                    let mut dx = vec![0.0f32; input_shape.iter().product()];
                    for (cell, flat_idx) in argmax.iter().enumerate() {
                        dx[*flat_idx] += dy.data()[cell];
                    }
                    dy = Tensor::new(input_shape.clone(), dx).expect("pool dx shape");
                }
                (Layer::Flatten, Cache::Flatten { shape }) => {
                    dy = dy.reshape(shape.clone()).expect("unflatten shape");
                }
                _ => unreachable!("cache/layer mismatch"),
            }
        }
        grads
    }

    /// Loss + gradient for one `(input, label)` example: softmax
    /// cross-entropy over the logits.
    fn example_grads(&self, input: Tensor, label: usize) -> (f32, Vec<LayerGrads>) {
        let (logits, caches) = self.forward_train(input);
        let mut probs = logits.clone();
        ops::softmax(&mut probs);
        let p = probs.data()[label].max(1e-12);
        let loss = -p.ln();
        // dlogits = probs - onehot(label)
        let mut dlogits = probs;
        dlogits.data_mut()[label] -= 1.0;
        (loss, self.backward(&caches, dlogits))
    }

    /// One SGD-with-momentum step over a minibatch; returns the mean
    /// loss. Per-example gradients are computed in parallel (Rayon)
    /// and reduced.
    pub fn sgd_step(
        &mut self,
        batch: &[(Tensor, usize)],
        learning_rate: f32,
        momentum: f32,
    ) -> Result<f32, TrainError> {
        if batch.is_empty() {
            return Err(TrainError::BadDataset("empty minibatch".into()));
        }
        let (total_loss, summed) = batch
            .par_iter()
            .map(|(x, label)| self.example_grads(x.clone(), *label))
            .reduce(
                || {
                    (
                        0.0,
                        self.layers
                            .iter()
                            .map(LayerGrads::zeros_like)
                            .collect::<Vec<_>>(),
                    )
                },
                |(l1, mut g1), (l2, g2)| {
                    for (a, b) in g1.iter_mut().zip(&g2) {
                        a.accumulate(b);
                    }
                    (l1 + l2, g1)
                },
            );
        let scale = 1.0 / batch.len() as f32;
        for ((layer, grad), vel) in self
            .layers
            .iter_mut()
            .zip(summed)
            .zip(self.velocity.iter_mut())
        {
            let mut grad = grad;
            grad.scale(scale);
            match layer {
                Layer::Conv2d { weights, bias, .. } | Layer::Dense { weights, bias, .. } => {
                    for ((w, v), g) in weights
                        .iter_mut()
                        .zip(vel.weights.iter_mut())
                        .zip(&grad.weights)
                    {
                        *v = momentum * *v - learning_rate * g;
                        *w += *v;
                    }
                    for ((b, v), g) in bias.iter_mut().zip(vel.bias.iter_mut()).zip(&grad.bias) {
                        *v = momentum * *v - learning_rate * g;
                        *b += *v;
                    }
                }
                _ => {}
            }
        }
        Ok(total_loss * scale)
    }

    /// Train for `epochs` over the dataset in minibatches; returns the
    /// per-epoch mean losses.
    pub fn fit(
        &mut self,
        data: &[(Tensor, usize)],
        epochs: usize,
        batch_size: usize,
        learning_rate: f32,
        momentum: f32,
    ) -> Result<Vec<f32>, TrainError> {
        if data.is_empty() {
            return Err(TrainError::BadDataset("empty training set".into()));
        }
        let mut losses = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for batch in data.chunks(batch_size.max(1)) {
                epoch_loss += self.sgd_step(batch, learning_rate, momentum)?;
                batches += 1;
            }
            losses.push(epoch_loss / batches as f32);
        }
        Ok(losses)
    }

    /// Classification accuracy over a labelled set.
    pub fn accuracy(&self, data: &[(Tensor, usize)]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = data
            .par_iter()
            .filter(|(x, label)| self.logits(x.clone()).argmax() == Some(*label))
            .count();
        correct as f64 / data.len() as f64
    }

    /// Freeze into an inference [`Network`] (softmax head appended).
    pub fn into_network(self, name: impl Into<String>) -> Network {
        let mut layers = self.layers;
        layers.push(Layer::Softmax);
        Network::new(name, self.input_shape, vec![Block::Seq(layers)])
    }
}

/// Max pooling that also returns, per output cell, the flat index of
/// the winning input element (for gradient routing).
fn maxpool_with_argmax(input: &Tensor, size: usize, stride: usize) -> (Tensor, Vec<usize>) {
    let shape = input.shape();
    let (c, h, w) = (shape[0], shape[1], shape[2]);
    let oh = (h - size) / stride + 1;
    let ow = (w - size) / stride + 1;
    let mut out = vec![f32::NEG_INFINITY; c * oh * ow];
    let mut argmax = vec![0usize; c * oh * ow];
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0;
                for ky in 0..size {
                    for kx in 0..size {
                        let iy = oy * stride + ky;
                        let ix = ox * stride + kx;
                        let idx = (ch * h + iy) * w + ix;
                        let v = input.data()[idx];
                        if v > best {
                            best = v;
                            best_idx = idx;
                        }
                    }
                }
                let cell = (ch * oh + oy) * ow + ox;
                out[cell] = best;
                argmax[cell] = best_idx;
            }
        }
    }
    (
        Tensor::new(vec![c, oh, ow], out).expect("pool shape"),
        argmax,
    )
}

/// Scatter im2col-layout gradients back to input layout (the adjoint
/// of [`ops::im2col`]).
#[allow(clippy::too_many_arguments)]
fn col2im(
    dcols: &[f32],
    input_shape: &[usize],
    kh: usize,
    kw: usize,
    stride: usize,
    padding: usize,
    oh: usize,
    ow: usize,
) -> Tensor {
    let (c_in, h, w) = (input_shape[0], input_shape[1], input_shape[2]);
    let cols_n = oh * ow;
    let mut dx = vec![0.0f32; c_in * h * w];
    for c in 0..c_in {
        for ky in 0..kh {
            for kx in 0..kw {
                let row = (c * kh + ky) * kw + kx;
                let drow = &dcols[row * cols_n..(row + 1) * cols_n];
                for oy in 0..oh {
                    let iy = (oy * stride + ky) as isize - padding as isize;
                    if iy < 0 || iy as usize >= h {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * stride + kx) as isize - padding as isize;
                        if ix < 0 || ix as usize >= w {
                            continue;
                        }
                        dx[(c * h + iy as usize) * w + ix as usize] += drow[oy * ow + ox];
                    }
                }
            }
        }
    }
    Tensor::new(input_shape.to_vec(), dx).expect("col2im shape")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn tiny_conv_net(seed: u64) -> Trainable {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rand_vec = |n: usize, scale: f32| -> Vec<f32> {
            (0..n).map(|_| rng.gen_range(-scale..scale)).collect()
        };
        Trainable::new(
            vec![1, 6, 6],
            vec![
                Layer::Conv2d {
                    weights: rand_vec(4 * 9, 0.5),
                    bias: vec![0.0; 4],
                    c_out: 4,
                    kh: 3,
                    kw: 3,
                    stride: 1,
                    padding: 1,
                },
                Layer::ReLU,
                Layer::MaxPool { size: 2, stride: 2 },
                Layer::Flatten,
                Layer::Dense {
                    weights: rand_vec(3 * 36, 0.5),
                    bias: vec![0.0; 3],
                    out: 3,
                    input: 36,
                },
            ],
        )
        .unwrap()
    }

    fn random_input(seed: u64, shape: &[usize]) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = shape.iter().product();
        Tensor::new(
            shape.to_vec(),
            (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        )
        .unwrap()
    }

    /// Loss of the network at its current parameters.
    fn loss_of(net: &Trainable, input: &Tensor, label: usize) -> f32 {
        let (logits, _) = net.forward_train(input.clone());
        let mut probs = logits;
        ops::softmax(&mut probs);
        -probs.data()[label].max(1e-12).ln()
    }

    /// Central-difference gradient check for every parameter of every
    /// parameterized layer — the canonical backprop correctness test.
    #[test]
    fn analytic_gradients_match_finite_differences() {
        let mut net = tiny_conv_net(3);
        let input = random_input(1, &[1, 6, 6]);
        let label = 2usize;
        let (_, analytic) = net.example_grads(input.clone(), label);
        const EPS: f32 = 1e-3;
        for layer_idx in [0usize, 4] {
            // Sample a handful of parameters per layer.
            let n_params = match &net.layers[layer_idx] {
                Layer::Conv2d { weights, .. } | Layer::Dense { weights, .. } => weights.len(),
                _ => 0,
            };
            for p in (0..n_params).step_by(n_params / 7 + 1) {
                let set = |net: &mut Trainable, value: f32| match &mut net.layers[layer_idx] {
                    Layer::Conv2d { weights, .. } | Layer::Dense { weights, .. } => {
                        weights[p] = value
                    }
                    _ => unreachable!(),
                };
                let original = match &net.layers[layer_idx] {
                    Layer::Conv2d { weights, .. } | Layer::Dense { weights, .. } => weights[p],
                    _ => unreachable!(),
                };
                set(&mut net, original + EPS);
                let plus = loss_of(&net, &input, label);
                set(&mut net, original - EPS);
                let minus = loss_of(&net, &input, label);
                set(&mut net, original);
                let numeric = (plus - minus) / (2.0 * EPS);
                let got = analytic[layer_idx].weights[p];
                assert!(
                    (numeric - got).abs() < 1e-2 * (1.0 + numeric.abs()),
                    "layer {layer_idx} param {p}: numeric {numeric} vs analytic {got}"
                );
            }
        }
        // Bias gradients too.
        let (_, analytic) = net.example_grads(input.clone(), label);
        let original = match &net.layers[0] {
            Layer::Conv2d { bias, .. } => bias[1],
            _ => unreachable!(),
        };
        let set_bias = |net: &mut Trainable, v: f32| {
            if let Layer::Conv2d { bias, .. } = &mut net.layers[0] {
                bias[1] = v;
            }
        };
        set_bias(&mut net, original + EPS);
        let plus = loss_of(&net, &input, label);
        set_bias(&mut net, original - EPS);
        let minus = loss_of(&net, &input, label);
        set_bias(&mut net, original);
        let numeric = (plus - minus) / (2.0 * EPS);
        assert!((numeric - analytic[0].bias[1]).abs() < 1e-2 * (1.0 + numeric.abs()));
    }

    /// A linearly separable toy task: classify whether the bright blob
    /// sits in the top or bottom half of the image.
    fn blob_dataset(n: usize, seed: u64) -> Vec<(Tensor, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let label = rng.gen_range(0..2usize);
                let mut data = vec![0.0f32; 36];
                let cy = if label == 0 {
                    rng.gen_range(0..2)
                } else {
                    rng.gen_range(4..6)
                };
                let cx = rng.gen_range(0..6);
                data[cy * 6 + cx] = 1.0;
                for v in &mut data {
                    *v += rng.gen_range(-0.05..0.05);
                }
                (Tensor::new(vec![1, 6, 6], data).unwrap(), label)
            })
            .collect()
    }

    fn blob_net(seed: u64) -> Trainable {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rand_vec = |n: usize, scale: f32| -> Vec<f32> {
            (0..n).map(|_| rng.gen_range(-scale..scale)).collect()
        };
        Trainable::new(
            vec![1, 6, 6],
            vec![
                Layer::Conv2d {
                    weights: rand_vec(4 * 9, 0.4),
                    bias: vec![0.0; 4],
                    c_out: 4,
                    kh: 3,
                    kw: 3,
                    stride: 1,
                    padding: 1,
                },
                Layer::ReLU,
                Layer::Flatten,
                Layer::Dense {
                    weights: rand_vec(2 * 144, 0.2),
                    bias: vec![0.0; 2],
                    out: 2,
                    input: 144,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn training_reduces_loss_and_reaches_high_accuracy() {
        let mut net = blob_net(11);
        let train = blob_dataset(240, 1);
        let test = blob_dataset(80, 2);
        let before = net.accuracy(&test);
        let losses = net.fit(&train, 8, 16, 0.1, 0.9).unwrap();
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.5),
            "loss did not halve: {losses:?}"
        );
        let after = net.accuracy(&test);
        assert!(after > 0.9, "accuracy {before} -> {after}");
        assert!(after > before);
    }

    #[test]
    fn trained_network_freezes_into_inference_form() {
        let mut net = blob_net(11);
        let train = blob_dataset(240, 1);
        net.fit(&train, 8, 16, 0.1, 0.9).unwrap();
        let frozen = net.into_network("blob-classifier");
        let (sample, label) = &blob_dataset(1, 3)[0];
        let probs = frozen.forward(sample.clone());
        assert!((probs.data().iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert_eq!(probs.argmax(), Some(*label));
    }

    #[test]
    fn unsupported_layers_rejected_up_front() {
        let Err(err) = Trainable::new(vec![4], vec![Layer::Softmax]) else {
            panic!("softmax must be rejected");
        };
        assert!(matches!(err, TrainError::Unsupported(_)));
        let bn = Layer::BatchNorm {
            gamma: vec![1.0],
            beta: vec![0.0],
            mean: vec![0.0],
            var: vec![1.0],
        };
        assert!(Trainable::new(vec![1, 2, 2], vec![bn]).is_err());
    }

    #[test]
    fn empty_data_rejected() {
        let mut net = blob_net(1);
        assert!(matches!(
            net.fit(&[], 1, 8, 0.1, 0.9),
            Err(TrainError::BadDataset(_))
        ));
        assert!(net.sgd_step(&[], 0.1, 0.9).is_err());
    }

    #[test]
    fn maxpool_argmax_routes_gradients_to_winners() {
        let input = Tensor::new(
            vec![1, 2, 2],
            vec![1.0, 5.0, 2.0, 3.0], // winner is index 1
        )
        .unwrap();
        let (pooled, argmax) = maxpool_with_argmax(&input, 2, 2);
        assert_eq!(pooled.data(), &[5.0]);
        assert_eq!(argmax, vec![1]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the
        // defining property of the adjoint, which backprop relies on.
        let x = random_input(5, &[2, 5, 5]);
        let (kh, kw, stride, padding) = (3, 3, 2, 1);
        let (cols, oh, ow) = ops::im2col(&x, kh, kw, stride, padding);
        let mut rng = StdRng::seed_from_u64(6);
        let y: Vec<f32> = (0..cols.len()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let lhs: f32 = cols.iter().zip(&y).map(|(a, b)| a * b).sum();
        let back = col2im(&y, x.shape(), kh, kw, stride, padding, oh, ow);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        assert!(
            (lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()),
            "{lhs} vs {rhs}"
        );
    }
}
