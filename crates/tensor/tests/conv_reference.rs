//! Property test: the im2col+GEMM convolution agrees with a direct
//! (naive) convolution reference on random inputs and shapes.

use dlhub_tensor::ops::conv2d;
use dlhub_tensor::Tensor;
use proptest::prelude::*;

/// Direct convolution: the obviously correct O(everything) loop.
#[allow(clippy::too_many_arguments)]
fn conv2d_reference(
    input: &Tensor,
    weights: &[f32],
    bias: &[f32],
    c_out: usize,
    k: usize,
    stride: usize,
    padding: usize,
) -> Tensor {
    let (c_in, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let oh = (h + 2 * padding - k) / stride + 1;
    let ow = (w + 2 * padding - k) / stride + 1;
    let mut out = vec![0.0f32; c_out * oh * ow];
    for co in 0..c_out {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = bias[co];
                for ci in 0..c_in {
                    for ky in 0..k {
                        for kx in 0..k {
                            let iy = (oy * stride + ky) as isize - padding as isize;
                            let ix = (ox * stride + kx) as isize - padding as isize;
                            if iy < 0 || ix < 0 || iy as usize >= h || ix as usize >= w {
                                continue;
                            }
                            let wv = weights[((co * c_in + ci) * k + ky) * k + kx];
                            acc += wv * input.at_chw(ci, iy as usize, ix as usize);
                        }
                    }
                }
                out[(co * oh + oy) * ow + ox] = acc;
            }
        }
    }
    Tensor::new(vec![c_out, oh, ow], out).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gemm_conv_matches_direct_conv(
        c_in in 1usize..4,
        c_out in 1usize..4,
        hw in 4usize..10,
        k in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..2,
        seed in any::<u64>(),
    ) {
        prop_assume!(hw + 2 * padding >= k);
        // Deterministic pseudo-random data from the seed.
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as i32 % 1000) as f32 / 250.0 - 2.0
        };
        let input = Tensor::new(
            vec![c_in, hw, hw],
            (0..c_in * hw * hw).map(|_| next()).collect(),
        )
        .unwrap();
        let weights: Vec<f32> = (0..c_out * c_in * k * k).map(|_| next()).collect();
        let bias: Vec<f32> = (0..c_out).map(|_| next()).collect();

        let fast = conv2d(&input, &weights, &bias, c_out, k, k, stride, padding);
        let slow = conv2d_reference(&input, &weights, &bias, c_out, k, stride, padding);
        prop_assert_eq!(fast.shape(), slow.shape());
        for (a, b) in fast.data().iter().zip(slow.data()) {
            prop_assert!((a - b).abs() <= 1e-3 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }
}
