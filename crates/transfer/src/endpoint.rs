//! Storage endpoints.

use dlhub_auth::IdentityId;
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// A simple rolling checksum (FNV-1a 64) attached to every stored
/// file and re-verified after every transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checksum(pub u64);

impl Checksum {
    /// Hash file contents.
    pub fn of(bytes: &[u8]) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Checksum(h)
    }
}

struct File {
    content: Vec<u8>,
    checksum: Checksum,
}

struct State {
    files: BTreeMap<String, File>,
    /// Identities allowed to read/write. Empty set = open endpoint.
    allowed: HashSet<IdentityId>,
}

/// A named storage endpoint with a bandwidth rating (MB/s) used by the
/// transfer service's duration model.
#[derive(Clone)]
pub struct Endpoint {
    name: Arc<String>,
    bandwidth_mbps: f64,
    state: Arc<RwLock<State>>,
}

impl Endpoint {
    /// Create an open (unrestricted) endpoint.
    pub fn new(name: impl Into<String>, bandwidth_mbps: f64) -> Self {
        Endpoint {
            name: Arc::new(name.into()),
            bandwidth_mbps: bandwidth_mbps.max(0.001),
            state: Arc::new(RwLock::new(State {
                files: BTreeMap::new(),
                allowed: HashSet::new(),
            })),
        }
    }

    /// Endpoint display name (`site#collection` by Globus convention).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rated bandwidth in MB/s.
    pub fn bandwidth_mbps(&self) -> f64 {
        self.bandwidth_mbps
    }

    /// Restrict the endpoint to `identity` (repeatable). Once any
    /// restriction exists, only listed identities may activate.
    pub fn restrict_to(&self, identity: IdentityId) {
        self.state.write().allowed.insert(identity);
    }

    /// Can `identity` use this endpoint? Anonymous (`None`) only on
    /// open endpoints.
    pub fn permits(&self, identity: Option<IdentityId>) -> bool {
        let st = self.state.read();
        if st.allowed.is_empty() {
            return true;
        }
        identity.is_some_and(|id| st.allowed.contains(&id))
    }

    /// Store a file (overwrites).
    pub fn put(&self, path: &str, content: Vec<u8>) {
        let checksum = Checksum::of(&content);
        self.state
            .write()
            .files
            .insert(path.to_string(), File { content, checksum });
    }

    /// Fetch a file's contents.
    pub fn get(&self, path: &str) -> Option<Vec<u8>> {
        self.state.read().files.get(path).map(|f| f.content.clone())
    }

    /// Stored checksum of a file.
    pub fn checksum(&self, path: &str) -> Option<Checksum> {
        self.state.read().files.get(path).map(|f| f.checksum)
    }

    /// File size in bytes.
    pub fn size(&self, path: &str) -> Option<usize> {
        self.state.read().files.get(path).map(|f| f.content.len())
    }

    /// List paths under a prefix (Globus `ls`).
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.state
            .read()
            .files
            .keys()
            .filter(|p| p.starts_with(prefix))
            .cloned()
            .collect()
    }

    /// Remove a file; true if it existed.
    pub fn delete(&self, path: &str) -> bool {
        self.state.write().files.remove(path).is_some()
    }

    /// Corrupt a stored file in place **without** updating its
    /// checksum — test hook for integrity-verification paths.
    pub fn corrupt_for_test(&self, path: &str) {
        if let Some(f) = self.state.write().files.get_mut(path) {
            if let Some(byte) = f.content.first_mut() {
                *byte ^= 0xFF;
            } else {
                f.content.push(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip_and_checksum() {
        let e = Endpoint::new("petrel#data", 100.0);
        e.put("/a/b.bin", vec![1, 2, 3]);
        assert_eq!(e.get("/a/b.bin").unwrap(), vec![1, 2, 3]);
        assert_eq!(e.checksum("/a/b.bin").unwrap(), Checksum::of(&[1, 2, 3]));
        assert_eq!(e.size("/a/b.bin"), Some(3));
        assert!(e.get("/missing").is_none());
    }

    #[test]
    fn list_filters_by_prefix() {
        let e = Endpoint::new("x", 1.0);
        e.put("/m/a", vec![]);
        e.put("/m/b", vec![]);
        e.put("/other", vec![]);
        assert_eq!(e.list("/m/").len(), 2);
        assert_eq!(e.list("/").len(), 3);
    }

    #[test]
    fn restriction_gates_access() {
        let e = Endpoint::new("x", 1.0);
        assert!(e.permits(None)); // open by default
        e.restrict_to(IdentityId(7));
        assert!(!e.permits(None));
        assert!(!e.permits(Some(IdentityId(8))));
        assert!(e.permits(Some(IdentityId(7))));
    }

    #[test]
    fn corrupt_for_test_breaks_checksum() {
        let e = Endpoint::new("x", 1.0);
        e.put("/f", vec![9, 9]);
        e.corrupt_for_test("/f");
        let stored = e.get("/f").unwrap();
        assert_ne!(Checksum::of(&stored), e.checksum("/f").unwrap());
    }

    #[test]
    fn checksum_distinguishes_content() {
        assert_ne!(Checksum::of(&[1]), Checksum::of(&[2]));
        assert_eq!(Checksum::of(b"same"), Checksum::of(b"same"));
    }
}
