#![warn(missing_docs)]

//! # dlhub-transfer
//!
//! A Globus-Transfer-like data-staging substrate.
//!
//! DLHub "integrates with Globus to provide seamless authentication
//! and high performance data access for training and inference" (§I);
//! at publication time "model components can be uploaded to an AWS S3
//! bucket or a Globus endpoint. Once a model is published, the
//! Management Service downloads the components" (§IV-A), using
//! short-term dependent tokens "to access/download data on [the
//! user's] behalf" (§IV-D).
//!
//! This crate rebuilds that machinery:
//!
//! * [`Endpoint`] — a named storage location holding files with
//!   checksums; reads require *activation* with a token whose identity
//!   the endpoint's ACL admits.
//! * [`TransferService`] — asynchronous third-party transfers between
//!   endpoints: submit → task id → poll; per-endpoint bandwidth models
//!   give each task a duration estimate; checksums are verified on
//!   arrival and corrupted transfers are faulted, never silently
//!   delivered.
//!
//! ```
//! use dlhub_transfer::{Endpoint, TransferService};
//!
//! let svc = TransferService::new();
//! let src = svc.create_endpoint("petrel#researchdata", 100.0);
//! let dst = svc.create_endpoint("dlhub#staging", 1000.0);
//! src.put("/models/weights.h5", vec![1, 2, 3]);
//! let task = svc.submit(&src, "/models/weights.h5", &dst, "/stage/weights.h5").unwrap();
//! let info = svc.wait(&task).unwrap();
//! assert!(info.verified);
//! assert_eq!(dst.get("/stage/weights.h5").unwrap(), vec![1, 2, 3]);
//! ```

pub mod endpoint;
pub mod service;

pub use endpoint::{Checksum, Endpoint};
pub use service::{TransferError, TransferInfo, TransferService, TransferStatus, TransferTaskId};
