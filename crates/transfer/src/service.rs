//! The transfer service: asynchronous third-party transfers with
//! integrity verification.

use crate::endpoint::{Checksum, Endpoint};
use dlhub_auth::IdentityId;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Transfer task identifier.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TransferTaskId(pub String);

impl fmt::Display for TransferTaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Task lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferStatus {
    /// Accepted, still moving bytes.
    Active,
    /// Completed and checksum-verified.
    Succeeded,
    /// Failed (missing file, permission, integrity).
    Failed,
}

/// Completed-task record.
#[derive(Debug, Clone)]
pub struct TransferInfo {
    /// Task id.
    pub id: TransferTaskId,
    /// Final status.
    pub status: TransferStatus,
    /// Bytes moved.
    pub bytes: usize,
    /// Modeled duration at the endpoints' rated bandwidth (the
    /// narrower of the two ends).
    pub modeled_duration: Duration,
    /// Whether the destination checksum matched the source.
    pub verified: bool,
    /// Failure detail, if any.
    pub error: Option<String>,
}

/// Transfer errors (submission time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransferError {
    /// Source file missing.
    NoSuchFile(String),
    /// An endpoint refused activation for the caller.
    PermissionDenied(String),
    /// Unknown task id.
    UnknownTask(String),
}

impl fmt::Display for TransferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransferError::NoSuchFile(p) => write!(f, "no such file: {p}"),
            TransferError::PermissionDenied(e) => write!(f, "activation denied on {e}"),
            TransferError::UnknownTask(t) => write!(f, "unknown transfer task: {t}"),
        }
    }
}

impl std::error::Error for TransferError {}

struct Registry {
    tasks: Mutex<HashMap<TransferTaskId, TransferInfo>>,
    cv: Condvar,
}

/// The Globus-Transfer-like service. Cheap to clone.
#[derive(Clone)]
pub struct TransferService {
    registry: Arc<Registry>,
}

static NEXT_TASK: AtomicU64 = AtomicU64::new(1);

impl TransferService {
    /// Start a service.
    pub fn new() -> Self {
        TransferService {
            registry: Arc::new(Registry {
                tasks: Mutex::new(HashMap::new()),
                cv: Condvar::new(),
            }),
        }
    }

    /// Create and register an endpoint (convenience).
    pub fn create_endpoint(&self, name: &str, bandwidth_mbps: f64) -> Endpoint {
        Endpoint::new(name, bandwidth_mbps)
    }

    /// Submit an anonymous transfer (both endpoints must be open).
    pub fn submit(
        &self,
        source: &Endpoint,
        source_path: &str,
        dest: &Endpoint,
        dest_path: &str,
    ) -> Result<TransferTaskId, TransferError> {
        self.submit_as(None, source, source_path, dest, dest_path)
    }

    /// Submit a transfer on behalf of `identity` (the dependent-token
    /// flow: DLHub stages components "on their behalf", §IV-D).
    pub fn submit_as(
        &self,
        identity: Option<IdentityId>,
        source: &Endpoint,
        source_path: &str,
        dest: &Endpoint,
        dest_path: &str,
    ) -> Result<TransferTaskId, TransferError> {
        if !source.permits(identity) {
            return Err(TransferError::PermissionDenied(source.name().to_string()));
        }
        if !dest.permits(identity) {
            return Err(TransferError::PermissionDenied(dest.name().to_string()));
        }
        let Some(content) = source.get(source_path) else {
            return Err(TransferError::NoSuchFile(source_path.to_string()));
        };
        let expected = source
            .checksum(source_path)
            .expect("file with content has a checksum");
        let id = TransferTaskId(format!(
            "xfer-{:08x}",
            NEXT_TASK.fetch_add(1, Ordering::Relaxed)
        ));
        self.registry.tasks.lock().insert(
            id.clone(),
            TransferInfo {
                id: id.clone(),
                status: TransferStatus::Active,
                bytes: content.len(),
                modeled_duration: Duration::ZERO,
                verified: false,
                error: None,
            },
        );
        // The transfer itself runs on a worker thread (Globus tasks
        // are asynchronous; callers poll or wait).
        let registry = Arc::clone(&self.registry);
        let source = source.clone();
        let dest = dest.clone();
        let task_id = id.clone();
        let source_path = source_path.to_string();
        let dest_path = dest_path.to_string();
        std::thread::Builder::new()
            .name(format!("transfer-{task_id}"))
            .spawn(move || {
                // Re-read at copy time (the file may have changed
                // since submission; Globus verifies what it moved).
                let outcome = match source.get(&source_path) {
                    Some(content) => {
                        let bytes = content.len();
                        let bandwidth = source.bandwidth_mbps().min(dest.bandwidth_mbps());
                        let modeled =
                            Duration::from_secs_f64(bytes as f64 / (bandwidth * 1024.0 * 1024.0));
                        let arrived = Checksum::of(&content);
                        if arrived != expected {
                            (
                                TransferStatus::Failed,
                                bytes,
                                modeled,
                                false,
                                Some("integrity check failed".to_string()),
                            )
                        } else {
                            dest.put(&dest_path, content);
                            (TransferStatus::Succeeded, bytes, modeled, true, None)
                        }
                    }
                    None => (
                        TransferStatus::Failed,
                        0,
                        Duration::ZERO,
                        false,
                        Some(format!("source vanished: {source_path}")),
                    ),
                };
                let mut tasks = registry.tasks.lock();
                if let Some(info) = tasks.get_mut(&task_id) {
                    info.status = outcome.0;
                    info.bytes = outcome.1;
                    info.modeled_duration = outcome.2;
                    info.verified = outcome.3;
                    info.error = outcome.4;
                }
                registry.cv.notify_all();
            })
            .expect("spawn transfer worker");
        Ok(id)
    }

    /// Poll a task.
    pub fn status(&self, id: &TransferTaskId) -> Result<TransferInfo, TransferError> {
        self.registry
            .tasks
            .lock()
            .get(id)
            .cloned()
            .ok_or_else(|| TransferError::UnknownTask(id.to_string()))
    }

    /// Block until the task leaves `Active` (bounded internally at 30s
    /// as a deadlock guard).
    pub fn wait(&self, id: &TransferTaskId) -> Result<TransferInfo, TransferError> {
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        let mut tasks = self.registry.tasks.lock();
        loop {
            match tasks.get(id) {
                Some(info) if info.status != TransferStatus::Active => return Ok(info.clone()),
                Some(_) => {
                    if self
                        .registry
                        .cv
                        .wait_until(&mut tasks, deadline)
                        .timed_out()
                    {
                        return Ok(tasks.get(id).cloned().expect("task present while waiting"));
                    }
                }
                None => return Err(TransferError::UnknownTask(id.to_string())),
            }
        }
    }
}

impl Default for TransferService {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (TransferService, Endpoint, Endpoint) {
        let svc = TransferService::new();
        let src = svc.create_endpoint("petrel#data", 100.0);
        let dst = svc.create_endpoint("dlhub#staging", 1000.0);
        (svc, src, dst)
    }

    #[test]
    fn successful_transfer_verifies_and_delivers() {
        let (svc, src, dst) = pair();
        src.put("/w.h5", vec![7; 4096]);
        let task = svc.submit(&src, "/w.h5", &dst, "/stage/w.h5").unwrap();
        let info = svc.wait(&task).unwrap();
        assert_eq!(info.status, TransferStatus::Succeeded);
        assert!(info.verified);
        assert_eq!(info.bytes, 4096);
        assert!(info.modeled_duration > Duration::ZERO);
        assert_eq!(dst.get("/stage/w.h5").unwrap(), vec![7; 4096]);
    }

    #[test]
    fn missing_source_rejected_at_submit() {
        let (svc, src, dst) = pair();
        assert!(matches!(
            svc.submit(&src, "/ghost", &dst, "/x"),
            Err(TransferError::NoSuchFile(_))
        ));
    }

    #[test]
    fn restricted_endpoints_require_the_right_identity() {
        let (svc, src, dst) = pair();
        src.put("/f", vec![1]);
        src.restrict_to(IdentityId(5));
        assert!(matches!(
            svc.submit(&src, "/f", &dst, "/f"),
            Err(TransferError::PermissionDenied(_))
        ));
        assert!(matches!(
            svc.submit_as(Some(IdentityId(6)), &src, "/f", &dst, "/f"),
            Err(TransferError::PermissionDenied(_))
        ));
        let task = svc
            .submit_as(Some(IdentityId(5)), &src, "/f", &dst, "/f")
            .unwrap();
        assert_eq!(svc.wait(&task).unwrap().status, TransferStatus::Succeeded);
    }

    #[test]
    fn corruption_is_detected_not_delivered() {
        let (svc, src, dst) = pair();
        src.put("/f", vec![1, 2, 3]);
        src.corrupt_for_test("/f");
        let task = svc.submit(&src, "/f", &dst, "/f").unwrap();
        let info = svc.wait(&task).unwrap();
        assert_eq!(info.status, TransferStatus::Failed);
        assert!(!info.verified);
        assert!(info.error.unwrap().contains("integrity"));
        assert!(dst.get("/f").is_none(), "corrupt data must not land");
    }

    #[test]
    fn modeled_duration_uses_narrower_bandwidth() {
        let svc = TransferService::new();
        let slow = svc.create_endpoint("slow", 1.0); // 1 MB/s
        let fast = svc.create_endpoint("fast", 1000.0);
        slow.put("/mb", vec![0; 1024 * 1024]);
        let task = svc.submit(&slow, "/mb", &fast, "/mb").unwrap();
        let info = svc.wait(&task).unwrap();
        assert!((info.modeled_duration.as_secs_f64() - 1.0).abs() < 0.01);
    }

    #[test]
    fn unknown_task_errors() {
        let (svc, _, _) = pair();
        let ghost = TransferTaskId("xfer-ghost".into());
        assert!(matches!(
            svc.status(&ghost),
            Err(TransferError::UnknownTask(_))
        ));
        assert!(matches!(
            svc.wait(&ghost),
            Err(TransferError::UnknownTask(_))
        ));
    }

    #[test]
    fn many_concurrent_transfers_all_land() {
        let (svc, src, dst) = pair();
        let tasks: Vec<_> = (0..20)
            .map(|i| {
                let path = format!("/f{i}");
                src.put(&path, vec![i as u8; 100 + i]);
                svc.submit(&src, &path, &dst, &path).unwrap()
            })
            .collect();
        for (i, task) in tasks.iter().enumerate() {
            let info = svc.wait(task).unwrap();
            assert_eq!(info.status, TransferStatus::Succeeded);
            assert_eq!(dst.get(&format!("/f{i}")).unwrap().len(), 100 + i);
        }
    }
}
