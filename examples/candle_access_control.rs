//! Use case A (§VI-A): publication of cancer research models with
//! fine-grained access control.
//!
//! ```text
//! cargo run --release -p dlhub-client --example candle_access_control
//! ```
//!
//! "CANDLE uses DLHub to securely share and serve a set of deep
//! learning models … As the models are still in development, they
//! require substantial testing and verification by a subset of
//! selected users prior to their general release … only permitted
//! users can discover and invoke the models … Once models are
//! determined suitable for general release, the access control on the
//! model can be updated within DLHub to make them publicly available."

use dlhub_core::hub::TestHub;
use dlhub_core::repository::PublishVisibility;
use dlhub_core::servable::{servable_fn, ModelType, ServableMetadata};
use dlhub_core::value::Value;
use dlhub_search::Query;
use std::collections::BTreeMap;

fn main() {
    let hub = TestHub::builder().without_eval_servables().build();

    // Cast: the CANDLE team (hub owner) plus two other researchers.
    let tester = hub.user_token("trusted-tester");
    let outsider = hub.user_token("outsider");
    let tester_id = hub.auth.lookup("trusted-tester@dlhub.org").unwrap();
    hub.auth.add_to_group("candle-testers", tester_id).unwrap();

    // A drug-response predictor, still in development: restricted to
    // the candle-testers group.
    let mut metadata = ServableMetadata::new("drug-response", &hub.owner, ModelType::Keras);
    metadata.description =
        "Predict drug response from tumor molecular features (pre-release)".into();
    metadata.domain = "cancer".into();
    let receipt = hub
        .service
        .publish(
            &hub.token,
            metadata,
            servable_fn(|input| {
                let dose = input.as_f64().ok_or("expected a dose scalar")?;
                // A toy dose-response curve standing in for the CANDLE
                // network.
                Ok(Value::Float(1.0 / (1.0 + (-(dose - 5.0)).exp())))
            }),
            BTreeMap::new(),
            PublishVisibility::Restricted {
                users: vec![],
                groups: vec!["candle-testers".into()],
            },
        )
        .expect("publish restricted model");
    println!(
        "published {} v{} (doi {})",
        receipt.id, receipt.version, receipt.doi
    );

    // Discovery respects the ACL: the tester sees it, the outsider
    // does not — and cannot even learn it exists.
    let visible = |token| {
        hub.service
            .search(Some(token), &Query::free_text("drug response"))
            .len()
    };
    println!(
        "search hits — tester: {}, outsider: {}",
        visible(&tester),
        visible(&outsider)
    );

    let tester_run = hub
        .service
        .run(&tester, "dlhub/drug-response", Value::Float(6.5))
        .expect("tester may invoke");
    println!("tester invocation -> {}", tester_run.value);

    let denied = hub
        .service
        .run(&outsider, "dlhub/drug-response", Value::Float(6.5))
        .expect_err("outsider must be denied");
    println!("outsider invocation -> {denied}");

    // General release: flip the ACL; now everyone can use it.
    hub.repo
        .make_public(&hub.token, "dlhub/drug-response")
        .expect("owner releases the model");
    let after = hub
        .service
        .run(&outsider, "dlhub/drug-response", Value::Float(6.5))
        .expect("public model is invocable by anyone");
    println!(
        "after general release, outsider invocation -> {} (search hits: {})",
        after.value,
        visible(&outsider)
    );
}
