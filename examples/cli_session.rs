//! A scripted DLHub CLI session (§IV-E): the Git-like workflow of
//! initializing, describing, publishing and invoking a servable from a
//! working directory.
//!
//! ```text
//! cargo run --release -p dlhub-client --example cli_session
//! ```

use dlhub_client::cli::Cli;
use dlhub_core::hub::TestHub;
use std::sync::Arc;

fn main() {
    // A loose latency objective on the servable this session publishes:
    // `dlhub slo` below shows its burn rates and (quiet) alert state.
    // The profiler, flight recorder and time-series collector are
    // normally off (and statically free); enabling them here lets the
    // session demo `dlhub profile`, `dlhub contention`, `dlhub bundle`
    // and `dlhub top`.
    let hub = TestHub::builder()
        .without_eval_servables()
        .config(dlhub_core::serving::ServingConfig {
            profile_hz: 99,
            recorder_capacity: 4,
            telemetry_interval: std::time::Duration::from_millis(25),
            ..Default::default()
        })
        .slo(dlhub_core::obs::SloSpec::new(
            "dlhub/composition-parser",
            std::time::Duration::from_secs(5),
        ))
        .build();
    let cli = Cli::new(Arc::clone(&hub.service), hub.token.clone());

    // A scratch working directory standing in for the user's model
    // repo checkout.
    let workdir = std::env::temp_dir().join(format!("dlhub-session-{}", std::process::id()));
    std::fs::create_dir_all(&workdir).expect("create workdir");

    let script: Vec<Vec<&str>> = vec![
        vec!["init", "composition-parser", "--kind", "matminer-util"],
        vec!["ls"],
        vec![
            "update",
            "--description",
            "Parse chemical formulas into element fractions",
            "--tag",
            "materials",
            "--tag",
            "parser",
        ],
        vec!["publish"],
        vec!["ls"],
        vec!["run", "Ca(OH)2"],
        vec!["run", "BaTiO3"],
        // Republishing bumps the version, Git-style.
        vec!["publish"],
        vec!["ls"],
    ];

    for args in script {
        println!("$ dlhub {}", args.join(" "));
        match cli.execute(&workdir, &args) {
            Ok(output) => println!("{output}\n"),
            Err(err) => println!("error: {err}\n"),
        }
    }

    // Observability rides along with every session: the serving
    // dashboard, the collected request traces, stage-level latency
    // attribution, and the SLO table.
    let run_out = cli
        .execute(&workdir, &["run", "Mg3(PO4)2"])
        .expect("run for trace");
    println!("$ dlhub run Mg3(PO4)2\n{run_out}\n");
    let trace_id = run_out
        .split("trace ")
        .nth(1)
        .and_then(|rest| rest.strip_suffix(')'))
        .expect("run output carries its trace id")
        .to_string();
    // Give the 99 Hz background sampler and the 25 ms time-series
    // collector a few ticks to observe the session before asking for
    // the collapsed-stack profile and the `dlhub top` dashboard.
    std::thread::sleep(std::time::Duration::from_millis(120));
    for args in [
        vec!["stats"],
        vec!["stats", "--delta"],
        vec!["stats", "--prometheus"],
        vec!["trace", trace_id.as_str()],
        vec!["analyze", trace_id.as_str()],
        vec!["analyze"],
        vec!["slo"],
        vec!["slo", "--json"],
        vec!["top"],
        vec!["top", "--window-s", "5"],
        vec!["profile"],
        vec!["contention"],
        vec!["bundle"],
    ] {
        println!("$ dlhub {}", args.join(" "));
        match cli.execute(&workdir, &args) {
            Ok(output) => println!("{output}\n"),
            Err(err) => println!("error: {err}\n"),
        }
    }

    // Errors are first-class too: a second init refuses, unknown
    // commands are reported, and so are bad trace ids.
    for args in [
        vec!["init", "again"],
        vec!["frobnicate"],
        vec!["trace", "not-a-trace-id"],
        vec!["analyze", "0xdeadbeef"],
        vec!["bundle", "999"],
        vec!["top", "--frames"],
    ] {
        println!("$ dlhub {}", args.join(" "));
        match cli.execute(&workdir, &args) {
            Ok(output) => println!("{output}\n"),
            Err(err) => println!("error: {err}\n"),
        }
    }

    let _ = std::fs::remove_dir_all(&workdir);
}
