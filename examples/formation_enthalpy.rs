//! Use case D (§VI-D): predicting formation enthalpy from a material
//! composition through a three-step server-side pipeline.
//!
//! ```text
//! cargo run --release -p dlhub-client --example formation_enthalpy
//! ```
//!
//! "A pipeline for predicting formation enthalpy from a material
//! composition (e.g., SiO2) can be organized into three steps:
//! 1) conversion of material composition text into a pymatgen object;
//! 2) creation of a set of features, via matminer …;
//! 3) prediction of formation enthalpy using the matminer features.
//!
//! "… the end user sees a simplified interface that allows them to
//! input a material composition and receive a formation enthalpy."

use dlhub_core::hub::TestHub;
use dlhub_core::pipeline::Pipeline;
use dlhub_core::value::Value;

fn main() {
    let hub = TestHub::builder().build();

    // Register the pipeline once; afterwards users see the simplified
    // string-in / float-out interface.
    let pipeline = Pipeline::new(
        "formation-enthalpy",
        vec![
            "dlhub/matminer-util".into(),
            "dlhub/matminer-featurize".into(),
            "dlhub/matminer-model".into(),
        ],
    );
    hub.service
        .register_pipeline(&hub.token, pipeline)
        .expect("register pipeline");

    println!("composition -> predicted formation energy (synthetic model, eV/atom)\n");
    for formula in [
        "SiO2",
        "NaCl",
        "Fe2O3",
        "CuNi",
        "Ca(OH)2",
        "BaTiO3",
        "Mg0.5Fe0.5O",
    ] {
        let (value, steps) = hub
            .service
            .run_pipeline(&hub.token, "formation-enthalpy", Value::Str(formula.into()))
            .expect("pipeline run");
        let total_ms: f64 = steps
            .iter()
            .map(|s| s.timings.request.as_secs_f64() * 1e3)
            .sum();
        println!(
            "  {formula:<12} -> {value:>8}   ({total_ms:.2} ms across {} server-side steps)",
            steps.len()
        );
    }

    // The same stages remain individually invocable — the pipeline is
    // composition, not a new monolith.
    let parsed_sio2 = hub
        .service
        .run(&hub.token, "dlhub/matminer-util", Value::Str("SiO2".into()))
        .expect("parse");
    let features = hub
        .service
        .run(&hub.token, "dlhub/matminer-featurize", parsed_sio2.value)
        .expect("featurize");
    if let Value::Tensor { shape, .. } = &features.value {
        println!("\nstandalone featurize(SiO2) produced a {shape:?} feature vector");
    }

    // Data passes server-side: compare against the client round-trip
    // variant, which re-enters the Management Service per stage.
    let start = std::time::Instant::now();
    let parsed = hub
        .service
        .run(
            &hub.token,
            "dlhub/matminer-util",
            Value::Str("BaTiO3".into()),
        )
        .unwrap();
    let feats = hub
        .service
        .run(&hub.token, "dlhub/matminer-featurize", parsed.value)
        .unwrap();
    let _pred = hub
        .service
        .run(&hub.token, "dlhub/matminer-model", feats.value)
        .unwrap();
    println!(
        "client-side chaining of the same three stages: {:.2} ms",
        start.elapsed().as_secs_f64() * 1e3
    );

    // Workflows often end with an uncertainty-quantification stage
    // (§II); publish the UQ variant and extend the pipeline with it.
    use dlhub_core::servable::builtins::MatminerModelUq;
    hub.publish_simple(
        "matminer-model-uq",
        dlhub_core::servable::ModelType::ScikitLearn,
        std::sync::Arc::new(MatminerModelUq::train(7)),
    );
    hub.service
        .register_pipeline(
            &hub.token,
            Pipeline::new(
                "formation-enthalpy-uq",
                vec![
                    "dlhub/matminer-util".into(),
                    "dlhub/matminer-featurize".into(),
                    "dlhub/matminer-model-uq".into(),
                ],
            ),
        )
        .expect("register UQ pipeline");
    let (with_uq, _) = hub
        .service
        .run_pipeline(
            &hub.token,
            "formation-enthalpy-uq",
            Value::Str("SiO2".into()),
        )
        .expect("UQ pipeline run");
    println!("\nwith uncertainty quantification: SiO2 -> {with_uq}");
}
