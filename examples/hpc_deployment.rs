//! Deploying DLHub components on research infrastructure (§II, §IV-B):
//! staging model components from a Globus-style endpoint, and running
//! a Task Manager on an HPC system via Singularity under a batch
//! scheduler.
//!
//! ```text
//! cargo run --release -p dlhub-client --example hpc_deployment
//! ```

use dlhub_container::hpc::{BatchScheduler, JobRequest, JobState};
use dlhub_container::{singularity_build, ImageBuilder, Recipe};
use dlhub_core::hub::TestHub;
use dlhub_core::repository::PublishVisibility;
use dlhub_core::servable::{servable_fn, ModelType, ServableMetadata};
use dlhub_core::value::Value;
use dlhub_transfer::TransferService;
use std::sync::Arc;

fn main() {
    let hub = TestHub::builder().without_eval_servables().build();

    // ---- 1. Publication with remote components (§IV-A) -------------
    // The researcher's trained weights live on their lab's Globus
    // endpoint; DLHub stages them on the user's behalf, verifying
    // integrity, before building the servable container.
    let transfer = TransferService::new();
    let lab = transfer.create_endpoint("anl#materials-lab", 120.0);
    let staging = transfer.create_endpoint("dlhub#staging", 900.0);
    lab.put("/stability/weights.bin", vec![0xAB; 512 * 1024]);
    lab.put("/stability/hyperparams.json", b"{\"n_trees\": 25}".to_vec());
    // The endpoint is private to the publishing user.
    let owner_id = hub.auth.lookup(&hub.owner).unwrap();
    lab.restrict_to(owner_id);

    let mut metadata = ServableMetadata::new("stability-rf", &hub.owner, ModelType::ScikitLearn);
    metadata.description = "Random forest with endpoint-staged components".into();
    let receipt = hub
        .repo
        .publish_from_endpoint(
            &hub.token,
            metadata,
            servable_fn(|_| Ok(Value::Float(-0.42))),
            &transfer,
            &lab,
            "/stability/",
            &staging,
            PublishVisibility::Public,
        )
        .expect("publish with staged components");
    println!(
        "published {} v{} — components staged from {} with integrity checks",
        receipt.id,
        receipt.version,
        lab.name()
    );
    let out = hub
        .service
        .run(&hub.token, &receipt.id, Value::Null)
        .expect("serve staged model");
    println!("  inference -> {}", out.value);

    // ---- 2. Task Manager on HPC via Singularity (§IV-B) ------------
    // Build the Task Manager container, squash it into a SIF artifact
    // (HPC sites allow unprivileged Singularity, not Docker), and
    // submit it to a Slurm-like partition.
    let mut tm_recipe = Recipe::from_base("python:3.7");
    tm_recipe.entrypoint("dlhub-task-manager --queue dlhub.tasks");
    let tm_image = ImageBuilder::new().build(&tm_recipe);
    let sif = singularity_build(&tm_image);
    println!(
        "\nTask Manager SIF: {} ({} MB squashed)",
        sif.digest,
        sif.size / (1024 * 1024)
    );

    let partition = BatchScheduler::new(128);
    let tm_job = partition
        .submit(JobRequest {
            name: "dlhub-task-manager".into(),
            nodes: 4,
            walltime_s: 12 * 3600,
            sif: sif.digest,
        })
        .expect("sbatch task manager");
    // Science jobs share the partition; a short analysis job backfills
    // around a big reservation.
    let big = partition
        .submit(JobRequest {
            name: "dft-campaign".into(),
            nodes: 128,
            walltime_s: 24 * 3600,
            sif: sif.digest,
        })
        .expect("sbatch big job");
    let small = partition
        .submit(JobRequest {
            name: "quick-analysis".into(),
            nodes: 8,
            walltime_s: 1800,
            sif: sif.digest,
        })
        .expect("sbatch small job");

    println!("\nsqueue:");
    for entry in partition.queue() {
        println!(
            "  {:<6} {:<20} {:>3} nodes  {:?}",
            entry.id.to_string(),
            entry.name,
            entry.nodes,
            entry.state
        );
    }
    assert_eq!(partition.job_state(tm_job).unwrap(), JobState::Running);
    assert_eq!(partition.job_state(small).unwrap(), JobState::Running);
    assert_eq!(partition.job_state(big).unwrap(), JobState::Pending);
    println!(
        "\nTask Manager is serving from the partition; quick-analysis backfilled ahead of \
         dft-campaign without delaying its reservation."
    );

    // Advance the clock: the TM job ends at its walltime; the campaign
    // eventually gets the full machine.
    partition.advance(13 * 3600);
    println!(
        "after 13h: task manager {:?}, dft campaign {:?}",
        partition.job_state(tm_job).unwrap(),
        partition.job_state(big).unwrap()
    );

    // The serving stack is still healthy end-to-end.
    let again = hub
        .service
        .run(&hub.token, &receipt.id, Value::Null)
        .expect("still serving");
    drop(Arc::clone(&hub.service));
    println!("final check: {} -> {}", receipt.id, again.value);
}
