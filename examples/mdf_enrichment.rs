//! Use case B (§VI-B): enriching materials datasets.
//!
//! ```text
//! cargo run --release -p dlhub-client --example mdf_enrichment
//! ```
//!
//! "When a new dataset is registered with MDF, automated workflows are
//! applied to trigger the invocation of relevant models to analyze the
//! dataset and generate additional metadata. The selection of
//! appropriate models is possible due to the descriptive schemas used
//! in both MDF and DLHub. MDF extracts and associates fine-grained
//! type information with each dataset which are closely aligned with
//! the applicable input types described for each DLHub model."

use dlhub_core::hub::TestHub;
use dlhub_core::value::Value;
use dlhub_search::Query;
use serde_json::json;

/// A newly ingested MDF dataset: records with extracted type info.
struct MdfDataset {
    name: &'static str,
    /// The fine-grained type MDF extracted for the records.
    record_type: &'static str,
    records: Vec<Value>,
}

fn main() {
    let hub = TestHub::builder().build();

    // Two incoming datasets with different extracted record types.
    let datasets = vec![
        MdfDataset {
            name: "oqmd-subset-2019",
            record_type: "string", // composition strings
            records: ["NaCl", "BaTiO3", "Fe2O3", "SiC"]
                .iter()
                .map(|s| Value::Str(s.to_string()))
                .collect(),
        },
        MdfDataset {
            name: "micrograph-batch-07",
            record_type: "tensor[3x32x32]", // small RGB images
            records: (0..3)
                .map(|i| {
                    Value::from_tensor(&dlhub_core::tensor::models::synthetic_image(
                        &dlhub_core::tensor::models::CIFAR10_INPUT,
                        i,
                    ))
                })
                .collect(),
        },
    ];

    for dataset in datasets {
        println!(
            "\n=== ingesting dataset '{}' (records: {}) ===",
            dataset.name, dataset.record_type
        );
        // The automated workflow queries DLHub for models whose
        // declared input type matches the dataset's record type —
        // schema-driven selection, not hardcoded model lists.
        let applicable = hub.service.search(
            Some(&hub.token),
            &Query::field_match("input_type", dataset.record_type),
        );
        if applicable.is_empty() {
            println!("  no applicable models");
            continue;
        }
        for hit in &applicable {
            println!(
                "  applicable model: {} ({})",
                hit.id, hit.body["description"]
            );
        }

        // Invoke each applicable model over the records and attach the
        // outputs as enrichment metadata.
        for hit in applicable {
            let (outputs, timings) = hub
                .service
                .run_batch(&hub.token, &hit.id, dataset.records.clone())
                .expect("enrichment batch");
            let enrichment = json!({
                "dataset": dataset.name,
                "model": hit.id,
                "derived_records": outputs.len(),
                "batch_ms": timings.request.as_secs_f64() * 1e3,
            });
            println!("  enrichment: {enrichment}");
            if let Some(first) = outputs.first() {
                println!("    e.g. record[0] -> {first}");
            }
        }
    }
}
