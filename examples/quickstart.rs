//! Quickstart: publish a model, discover it, and run inference.
//!
//! ```text
//! cargo run --release -p dlhub-client --example quickstart
//! ```
//!
//! This walks the paper's basic workflow end-to-end in one process:
//! a Management Service, a Task Manager with a Parsl executor over a
//! PetrelKube-shaped cluster, the Globus-Auth-like security layer and
//! the search index are all live — the `TestHub` wires Fig 2 together.

use dlhub_client::DlhubClient;
use dlhub_core::hub::TestHub;
use dlhub_core::servable::{servable_fn, ModelType};
use dlhub_core::value::Value;
use std::sync::Arc;

fn main() {
    // 1. Bring up a hub with the paper's six evaluation servables.
    println!("starting DLHub (publishing evaluation servables)…");
    let hub = TestHub::builder().build();

    // 2. Discover models through the SDK's free-text search.
    let client = DlhubClient::new(Arc::clone(&hub.service), hub.token.clone());
    println!("\nmodels matching 'image':");
    for (id, metadata) in client.search("image").unwrap() {
        println!(
            "  {id}  [{}]  {}",
            metadata["model_type"], metadata["description"]
        );
    }

    // 3. Run the noop servable ("hello world").
    let out = client.run("dlhub/noop", &Value::Null).unwrap();
    println!("\ndlhub/noop -> {out}");

    // 4. Classify a synthetic CIFAR-10 image.
    let image = Value::from_tensor(&dlhub_core::tensor::models::synthetic_image(
        &dlhub_core::tensor::models::CIFAR10_INPUT,
        42,
    ));
    let out = client.run("dlhub/cifar10", &image).unwrap();
    println!("dlhub/cifar10 -> {out}");

    // 5. Publish your own processing function and call it.
    let id = hub.publish_simple(
        "greeter",
        ModelType::PythonFunction,
        servable_fn(|v| Ok(Value::Str(format!("greetings, {v}")))),
    );
    let out = client.run(&id, &Value::Str("scientist".into())).unwrap();
    println!("{id} -> {out}");

    // 6. Asynchronous execution returns a task UUID to poll.
    let task = client
        .run_async("dlhub/matminer-util", &Value::Str("Fe2O3".into()))
        .unwrap();
    println!("\nasync task id: {task}");
    let out = client
        .wait_task(&task, std::time::Duration::from_secs(10))
        .unwrap();
    println!("async result: {out}");

    // 7. Memoization: the repeat request is served from the
    //    Task-Manager-side cache in ~µs instead of re-running.
    let fresh = Value::from_tensor(&dlhub_core::tensor::models::synthetic_image(
        &dlhub_core::tensor::models::CIFAR10_INPUT,
        43,
    ));
    let first = hub
        .service
        .run(&hub.token, "dlhub/cifar10", fresh.clone())
        .unwrap();
    let second = hub.service.run(&hub.token, "dlhub/cifar10", fresh).unwrap();
    println!(
        "\ncifar10 invocation: {:.2} ms cold, {:.3} ms memoized (hit: {})",
        first.timings.invocation.as_secs_f64() * 1e3,
        second.timings.invocation.as_secs_f64() * 1e3,
        second.timings.cache_hit
    );
}
