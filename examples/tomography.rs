//! Use case C (§VI-C): processing tomographic neuroanatomy data.
//!
//! ```text
//! cargo run --release -p dlhub-client --example tomography
//! ```
//!
//! "A DLHub model is used to aid in the identification of the highest
//! quality slice to be used for tomographic reconstruction. Once
//! reconstructed, the resulting images are further processed with
//! segmentation models to characterize cells … enabling near real-time
//! automated application of the center finding models during the
//! reconstruction process as well as … batch-style segmentation
//! post-processing."
//!
//! The two models are custom user servables published through the
//! public API — exactly how the APS group would bring their own code.

use dlhub_core::hub::TestHub;
use dlhub_core::servable::{servable_fn, ModelType};
use dlhub_core::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SLICE: usize = 64;

/// Deterministic synthetic sinogram slices: quality (sharpness) peaks
/// around the true rotation-center slice.
fn synthetic_slices(n: usize, center: usize, seed: u64) -> Vec<Value> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            // Contrast decays with distance from the center slice.
            let quality = 1.0 / (1.0 + 0.4 * (i as f32 - center as f32).abs());
            let data: Vec<f32> = (0..SLICE * SLICE)
                .map(|p| {
                    let signal = if (p / SLICE + p % SLICE) % 7 < 3 {
                        1.0
                    } else {
                        0.0
                    };
                    quality * signal + (1.0 - quality) * rng.gen_range(0.4..0.6)
                })
                .collect();
            Value::Tensor {
                shape: vec![SLICE, SLICE],
                data,
            }
        })
        .collect()
}

fn variance(data: &[f32]) -> f32 {
    let mean = data.iter().sum::<f32>() / data.len() as f32;
    data.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / data.len() as f32
}

fn main() {
    let hub = TestHub::builder().without_eval_servables().build();

    // Center-finding model: given a stack of slices, return the index
    // of the highest-quality (highest-contrast) one.
    hub.publish_simple(
        "aps-center-finder",
        ModelType::Keras,
        servable_fn(|input| {
            let slices = input
                .as_list()
                .ok_or_else(|| "expected a list of slice tensors".to_string())?;
            let best = slices
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let t = s.to_tensor().ok_or("slice must be a tensor")?;
                    Ok::<_, String>((i, variance(t.data())))
                })
                .collect::<Result<Vec<_>, _>>()?
                .into_iter()
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .ok_or("empty slice stack")?;
            Ok(Value::Int(best as i64))
        }),
    );

    // Segmentation model: threshold a reconstructed image and report
    // the segmented-cell fraction.
    hub.publish_simple(
        "aps-segmentation",
        ModelType::Keras,
        servable_fn(|input| {
            let t = input.to_tensor().ok_or("expected an image tensor")?;
            let cells = t.data().iter().filter(|v| **v > 0.5).count();
            Ok(Value::Json(serde_json::json!({
                "segmented_fraction": cells as f64 / t.len() as f64,
                "pixels": t.len(),
            })))
        }),
    );

    // Near-real-time center finding during reconstruction: each newly
    // acquired stack is scored as it arrives.
    println!("center finding (near real time during reconstruction):");
    for (stack_id, true_center) in [(0u64, 17usize), (1, 40), (2, 5)] {
        let stack = Value::List(synthetic_slices(48, true_center, stack_id));
        let result = hub
            .service
            .run(&hub.token, "dlhub/aps-center-finder", stack)
            .expect("center finding");
        println!(
            "  stack {stack_id}: predicted center slice {} (true {true_center}) in {:.2} ms",
            result.value,
            result.timings.request.as_secs_f64() * 1e3,
        );
    }

    // Batch-style segmentation post-processing of reconstructed
    // volumes: one coalesced dispatch for the whole batch.
    let reconstructed: Vec<Value> = (0..16)
        .map(|i| synthetic_slices(1, 0, 100 + i).pop().expect("one slice"))
        .collect();
    let (outputs, timings) = hub
        .service
        .run_batch(&hub.token, "dlhub/aps-segmentation", reconstructed)
        .expect("segmentation batch");
    let fractions: Vec<f64> = outputs
        .iter()
        .filter_map(|o| match o {
            Value::Json(j) => j["segmented_fraction"].as_f64(),
            _ => None,
        })
        .collect();
    println!(
        "\nbatch segmentation of {} images in {:.2} ms (one dispatch);",
        outputs.len(),
        timings.request.as_secs_f64() * 1e3
    );
    println!(
        "segmented fractions range {:.3}..{:.3}",
        fractions.iter().cloned().fold(f64::INFINITY, f64::min),
        fractions.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
    );
}
