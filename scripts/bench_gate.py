#!/usr/bin/env python3
"""Bench regression gates.

Compares the latest smoke runs under results/ against the committed
full-length artifacts at the workspace root. Windows and machines
differ, so the regression floors are deliberately coarse; the absolute
acceptance thresholds (the broker rework's 2x single-thread / 6x
scaling contract) are enforced on the *committed* artifacts, which were
produced by full-length runs and do not change between CI runs.

Checks:
  hotpath   single-thread hit-path throughput within a generous factor
            of the committed baseline, and the 1-to-8-thread scaling
            shape survives (the analytics layer must not serialize the
            hot path).
  broker    committed contract: memo-bypass single-thread req/s at
            least BROKER_GATE_MIN_X times the committed hot-path
            baseline, and the RTT series scales at least
            BROKER_GATE_MIN_SCALING from 1 to 8 clients. Fresh smoke
            runs are then held to noise-floored fractions of the
            committed numbers (raw ring throughput, memo-bypass
            single-thread, scaling shape).
  overhead  committed contract: the hotpath bench's profiler A/B —
            throughput with the continuous profiler sampling and the
            flight recorder armed must stay within
            OVERHEAD_GATE_RATIO of the profiler-disabled run
            (default 0.95, i.e. <=5%% overhead). Enforced on the
            committed BENCH_hotpath.json, which full-length runs
            produce; smoke runs are too noisy for a 5%% bound.

  telemetry committed contract: the hotpath bench's collector A/B —
            throughput with the time-series telemetry collector
            sampling every registered metric must stay within
            OVERHEAD_GATE_RATIO of the collector-disabled run, the
            A/B must have taken sampling passes, and the artifact's
            embedded telemetry export must carry non-empty series.

  control   committed contract: the hotpath bench's control-loop A/B —
            throughput with the full control plane armed (telemetry
            collector, background autoscale reconciler, per-request
            admission control) must stay within OVERHEAD_GATE_RATIO of
            the control-disabled run, admission must have accounted
            every request (admitted > 0), nothing may have shed on the
            uncontended bench load, and the pinned min==max policy must
            have applied zero scaling decisions (the A/B measures the
            loop's steady-state cost, not capacity changes).

  workloads committed contract: BENCH_workloads.json must carry all
            five open-loop scenarios (steady-poisson, diurnal, bursty,
            zipf-fanout, hostile-tenant), each with corrected and
            uncorrected p50/p99/p999, monotone corrected quantiles,
            corrected >= uncorrected at every reported quantile, shed
            and cold-start counts, a schedule fingerprint and a
            non-empty tail stage attribution; the bursty scenario must
            show a positive coordinated-omission gap at p99. A fresh
            smoke artifact under results/, when present, is held to a
            noise-floored p999 regression bound per scenario.

Usage: bench_gate.py [--check hotpath|broker|overhead|telemetry|control|workloads|all]   (default: all)

Environment:
  BENCH_GATE_RATIO          throughput floor as a fraction of the
                            committed baseline (default 0.25; <=0
                            disables every gate)
  BENCH_GATE_SPEEDUP        minimum fresh 1-to-8-thread hotpath speedup
                            (default 1.5)
  BROKER_GATE_MIN_X         committed broker single-thread multiple of
                            the committed hotpath baseline (default 2.0)
  BROKER_GATE_MIN_SCALING   committed broker 1-to-8-client scaling
                            (default 6.0)
  BROKER_GATE_SPEEDUP       minimum fresh 1-to-8-client broker scaling,
                            noise floor for shared runners (default 2.0)
  OVERHEAD_GATE_RATIO       minimum committed enabled/disabled
                            throughput ratio for the profiler,
                            telemetry and control-loop A/Bs (default
                            0.95; <=0 disables the overhead, telemetry
                            and control gates)
  WORKLOADS_GATE_FACTOR     fresh smoke corrected p999 may exceed the
                            committed p999 by at most this multiple
                            (default 5.0; <=0 disables the workloads
                            gate entirely)
  WORKLOADS_GATE_FLOOR_MS   additive noise floor on the p999 bound, ms
                            (default 25). Smoke windows are short and
                            shared runners are noisy; the bound is
                            committed_p999 * factor + floor.
"""

import argparse
import json
import os
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        return None


def series_rate(doc, mode, threads, key):
    cells = doc["modes"][mode]
    return next(c[key] for c in cells if c["threads"] == threads)


def rtt_mode(doc):
    """The simulated-RTT serve series, whatever RTT it was run with."""
    names = [m for m in doc["modes"] if m.startswith("serve_rtt") and m != "serve_rtt0"]
    if not names:
        sys.exit("bench gate: broker artifact has no serve_rtt series")
    return names[0]


def check_hotpath(ratio):
    baseline = load("BENCH_hotpath.json")
    if baseline is None:
        print("bench gate: no committed BENCH_hotpath.json; skipping")
        return
    current = load("results/BENCH_hotpath.json")
    if current is None:
        sys.exit("bench gate: no results/BENCH_hotpath.json smoke run")

    base = series_rate(baseline, "hit100", 1, "req_per_s")
    cur = series_rate(current, "hit100", 1, "req_per_s")
    floor = base * ratio
    if cur < floor:
        sys.exit(
            "bench gate: hotpath regression — hit100 1-thread {:.0f} req/s "
            "vs committed {:.0f} (floor {:.0f}, ratio {})".format(
                cur, base, floor, ratio
            )
        )
    speedup = current.get("hit100_speedup_8t_over_1t", 0.0)
    speedup_floor = float(os.environ.get("BENCH_GATE_SPEEDUP", "1.5"))
    if speedup < speedup_floor:
        sys.exit(
            "bench gate: 1→8 thread speedup {:.2f}x < {}x "
            "(analytics layer may have serialized the hot path)".format(
                speedup, speedup_floor
            )
        )
    print(
        "bench gate: hotpath within noise ({:.0f} req/s vs committed {:.0f}, "
        "speedup {:.2f}x)".format(cur, base, speedup)
    )


def check_broker(ratio):
    committed = load("BENCH_broker.json")
    if committed is None:
        print("bench gate: no committed BENCH_broker.json; skipping")
        return

    # Absolute contract, enforced on the committed full-length run: the
    # memo-bypass broker path must beat the committed hot-path baseline
    # by the rework's factor, and the RTT series must scale.
    min_x = float(os.environ.get("BROKER_GATE_MIN_X", "2.0"))
    min_scaling = float(os.environ.get("BROKER_GATE_MIN_SCALING", "6.0"))
    hotpath = load("BENCH_hotpath.json")
    single = series_rate(committed, "serve_rtt0", 1, "per_s")
    if hotpath is not None:
        baseline = series_rate(hotpath, "hit100", 1, "req_per_s")
        if single < baseline * min_x:
            sys.exit(
                "bench gate: committed broker single-thread {:.0f} req/s "
                "< {}x the committed hot-path baseline {:.0f}".format(
                    single, min_x, baseline
                )
            )
    committed_scaling = committed.get("serve_rtt_speedup_8t_over_1t", 0.0)
    if committed_scaling < min_scaling:
        sys.exit(
            "bench gate: committed broker 1→8 client scaling {:.2f}x "
            "< {}x".format(committed_scaling, min_scaling)
        )

    current = load("results/BENCH_broker.json")
    if current is None:
        sys.exit("bench gate: no results/BENCH_broker.json smoke run")

    # Noise-floored regression checks on the fresh smoke run.
    for label, mode, threads in [
        ("raw ring", "raw", 1),
        ("memo-bypass single-thread", "serve_rtt0", 1),
    ]:
        base = series_rate(committed, mode, threads, "per_s")
        cur = series_rate(current, mode, threads, "per_s")
        if cur < base * ratio:
            sys.exit(
                "bench gate: broker regression — {} {:.0f} ops/s vs "
                "committed {:.0f} (floor {:.0f}, ratio {})".format(
                    label, cur, base, base * ratio, ratio
                )
            )
    fresh_scaling = current.get("serve_rtt_speedup_8t_over_1t", 0.0)
    scaling_floor = float(os.environ.get("BROKER_GATE_SPEEDUP", "2.0"))
    if fresh_scaling < scaling_floor:
        sys.exit(
            "bench gate: broker 1→8 client scaling {:.2f}x < {}x "
            "(sharded rings may have serialized)".format(
                fresh_scaling, scaling_floor
            )
        )
    print(
        "bench gate: broker within noise (committed {:.0f} req/s @1t "
        "{:.2f}x scaling; fresh {:.0f} req/s, {:.2f}x — raw ring "
        "{:.0f} ops/s vs committed {:.0f})".format(
            single,
            committed_scaling,
            series_rate(current, "serve_rtt0", 1, "per_s"),
            fresh_scaling,
            series_rate(current, "raw", 1, "per_s"),
            series_rate(committed, "raw", 1, "per_s"),
        )
    )


def check_overhead():
    floor = float(os.environ.get("OVERHEAD_GATE_RATIO", "0.95"))
    if floor <= 0:
        print("bench gate: overhead gate disabled (OVERHEAD_GATE_RATIO<=0)")
        return
    committed = load("BENCH_hotpath.json")
    if committed is None:
        print("bench gate: no committed BENCH_hotpath.json; skipping overhead")
        return
    overhead = committed.get("overhead")
    if overhead is None:
        sys.exit(
            "bench gate: committed BENCH_hotpath.json has no overhead "
            "object; regenerate with the profiler A/B"
        )
    ratio = overhead.get("enabled_over_disabled", 0.0)
    if ratio < floor:
        sys.exit(
            "bench gate: profiler overhead — enabled {:.0f} req/s vs "
            "disabled {:.0f} (ratio {:.3f} < floor {})".format(
                overhead.get("enabled_req_per_s", 0.0),
                overhead.get("disabled_req_per_s", 0.0),
                ratio,
                floor,
            )
        )
    if overhead.get("profiler_samples", 0) <= 0:
        sys.exit(
            "bench gate: overhead A/B recorded no profiler samples — "
            "the enabled side was not actually profiling"
        )
    print(
        "bench gate: profiler overhead within bound ({:.0f} → {:.0f} "
        "req/s, ratio {:.3f} >= {}, {} samples @ {} Hz)".format(
            overhead.get("disabled_req_per_s", 0.0),
            overhead.get("enabled_req_per_s", 0.0),
            ratio,
            floor,
            overhead.get("profiler_samples", 0),
            overhead.get("profile_hz", 0),
        )
    )


def check_telemetry():
    floor = float(os.environ.get("OVERHEAD_GATE_RATIO", "0.95"))
    if floor <= 0:
        print("bench gate: telemetry gate disabled (OVERHEAD_GATE_RATIO<=0)")
        return
    committed = load("BENCH_hotpath.json")
    if committed is None:
        print("bench gate: no committed BENCH_hotpath.json; skipping telemetry")
        return
    overhead = committed.get("telemetry_overhead")
    if overhead is None:
        sys.exit(
            "bench gate: committed BENCH_hotpath.json has no "
            "telemetry_overhead object; regenerate with the collector A/B"
        )
    ratio = overhead.get("enabled_over_disabled", 0.0)
    if ratio < floor:
        sys.exit(
            "bench gate: telemetry overhead — enabled {:.0f} req/s vs "
            "disabled {:.0f} (ratio {:.3f} < floor {})".format(
                overhead.get("enabled_req_per_s", 0.0),
                overhead.get("disabled_req_per_s", 0.0),
                ratio,
                floor,
            )
        )
    if overhead.get("telemetry_samples", 0) <= 0:
        sys.exit(
            "bench gate: telemetry A/B took no sampling passes — "
            "the enabled side was not actually collecting"
        )
    export = committed.get("telemetry")
    if not export or not export.get("series"):
        sys.exit(
            "bench gate: committed BENCH_hotpath.json telemetry export "
            "has no series; the time axis is missing"
        )
    print(
        "bench gate: telemetry overhead within bound ({:.0f} → {:.0f} "
        "req/s, ratio {:.3f} >= {}, {} passes, {} series exported)".format(
            overhead.get("disabled_req_per_s", 0.0),
            overhead.get("enabled_req_per_s", 0.0),
            ratio,
            floor,
            overhead.get("telemetry_samples", 0),
            len(export.get("series", [])),
        )
    )


def check_control():
    floor = float(os.environ.get("OVERHEAD_GATE_RATIO", "0.95"))
    if floor <= 0:
        print("bench gate: control gate disabled (OVERHEAD_GATE_RATIO<=0)")
        return
    committed = load("BENCH_hotpath.json")
    if committed is None:
        print("bench gate: no committed BENCH_hotpath.json; skipping control")
        return
    overhead = committed.get("autoscale_overhead")
    if overhead is None:
        sys.exit(
            "bench gate: committed BENCH_hotpath.json has no "
            "autoscale_overhead object; regenerate with the control-loop A/B"
        )
    ratio = overhead.get("enabled_over_disabled", 0.0)
    if ratio < floor:
        sys.exit(
            "bench gate: control-loop overhead — enabled {:.0f} req/s vs "
            "disabled {:.0f} (ratio {:.3f} < floor {})".format(
                overhead.get("enabled_req_per_s", 0.0),
                overhead.get("disabled_req_per_s", 0.0),
                ratio,
                floor,
            )
        )
    if overhead.get("admitted", 0) <= 0:
        sys.exit(
            "bench gate: control A/B admitted no requests — admission "
            "was not actually on the request path"
        )
    if overhead.get("shed", 0) != 0:
        sys.exit(
            "bench gate: control A/B shed {} requests on an uncontended "
            "bench load — the admission thresholds are miscalibrated".format(
                overhead.get("shed", 0)
            )
        )
    if overhead.get("scaling_decisions", 0) != 0:
        sys.exit(
            "bench gate: control A/B applied {} scaling decisions under a "
            "pinned min==max policy — the A/B measured capacity changes, "
            "not steady-state overhead".format(overhead.get("scaling_decisions", 0))
        )
    print(
        "bench gate: control-loop overhead within bound ({:.0f} → {:.0f} "
        "req/s, ratio {:.3f} >= {}, {} admitted, 0 shed)".format(
            overhead.get("disabled_req_per_s", 0.0),
            overhead.get("enabled_req_per_s", 0.0),
            ratio,
            floor,
            overhead.get("admitted", 0),
        )
    )


WORKLOAD_SCENARIOS = (
    "steady-poisson",
    "diurnal",
    "bursty",
    "zipf-fanout",
    "hostile-tenant",
)


def check_workloads():
    factor = float(os.environ.get("WORKLOADS_GATE_FACTOR", "5.0"))
    floor_ms = float(os.environ.get("WORKLOADS_GATE_FLOOR_MS", "25"))
    if factor <= 0:
        print("bench gate: workloads gate disabled (WORKLOADS_GATE_FACTOR<=0)")
        return
    committed = load("BENCH_workloads.json")
    if committed is None:
        sys.exit(
            "bench gate: no committed BENCH_workloads.json; run the "
            "workloads bench full-length and commit the artifact"
        )
    by_name = {s.get("name"): s for s in committed.get("scenarios", [])}
    missing = [n for n in WORKLOAD_SCENARIOS if n not in by_name]
    if missing:
        sys.exit(
            "bench gate: committed BENCH_workloads.json is missing "
            "scenarios: {}".format(", ".join(missing))
        )
    for name in WORKLOAD_SCENARIOS:
        sc = by_name[name]
        ol = sc.get("open_loop") or {}
        for side in ("corrected", "uncorrected"):
            summary = ol.get(side) or {}
            for q in ("p50", "p99", "p999"):
                if q not in summary:
                    sys.exit(
                        "bench gate: workloads scenario {} lacks {} {}".format(
                            name, side, q
                        )
                    )
        corr, uncorr = ol["corrected"], ol["uncorrected"]
        if not corr["p50"] <= corr["p99"] <= corr["p999"]:
            sys.exit(
                "bench gate: workloads scenario {} corrected quantiles "
                "are not monotone".format(name)
            )
        for q in ("p50", "p99", "p999"):
            if corr[q] < uncorr[q]:
                sys.exit(
                    "bench gate: workloads scenario {} corrected {} below "
                    "uncorrected — the intended-start stamp is broken".format(name, q)
                )
        if not sc.get("completed", 0) > 0:
            sys.exit("bench gate: workloads scenario {} completed nothing".format(name))
        for key in ("shed", "cold_starts", "schedule_fingerprint"):
            if key not in sc:
                sys.exit(
                    "bench gate: workloads scenario {} lacks {}".format(name, key)
                )
        tail = (sc.get("attribution") or {}).get("tail") or {}
        if not tail.get("stages"):
            sys.exit(
                "bench gate: workloads scenario {} has no tail stage "
                "attribution".format(name)
            )
    gap = by_name["bursty"]["open_loop"].get("gap_p99_ns", 0)
    if not gap > 0:
        sys.exit(
            "bench gate: committed bursty scenario shows no coordinated-"
            "omission gap at p99; the open-loop correction is not biting"
        )

    fresh = load("results/BENCH_workloads.json")
    if fresh is None:
        print(
            "bench gate: workloads committed artifact OK (5 scenarios, "
            "bursty CO gap {:.1f} ms); no fresh smoke to regress".format(gap / 1e6)
        )
        return
    fresh_by_name = {s.get("name"): s for s in fresh.get("scenarios", [])}
    for name in WORKLOAD_SCENARIOS:
        if name not in fresh_by_name:
            sys.exit("bench gate: fresh workloads smoke lacks scenario {}".format(name))
        got = fresh_by_name[name]["open_loop"]["corrected"]["p999"]
        base = by_name[name]["open_loop"]["corrected"]["p999"]
        bound = base * factor + floor_ms * 1e6
        if got > bound:
            sys.exit(
                "bench gate: workloads {} corrected p999 regressed — "
                "{:.1f} ms vs bound {:.1f} ms (committed {:.1f} ms * {} "
                "+ {} ms floor)".format(
                    name, got / 1e6, bound / 1e6, base / 1e6, factor, floor_ms
                )
            )
    print(
        "bench gate: workloads OK (5 scenarios; bursty CO gap {:.1f} ms; "
        "fresh p999s within {}x + {} ms of committed)".format(
            gap / 1e6, factor, floor_ms
        )
    )


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--check",
        choices=[
            "hotpath",
            "broker",
            "overhead",
            "telemetry",
            "control",
            "workloads",
            "all",
        ],
        default="all",
    )
    opts = parser.parse_args()
    if opts.check in ("overhead", "all"):
        check_overhead()
    if opts.check in ("telemetry", "all"):
        check_telemetry()
    if opts.check in ("control", "all"):
        check_control()
    if opts.check in ("workloads", "all"):
        check_workloads()
    ratio = float(os.environ.get("BENCH_GATE_RATIO", "0.25"))
    if ratio <= 0:
        print("bench gate: disabled (BENCH_GATE_RATIO<=0)")
        return 0
    if opts.check in ("hotpath", "all"):
        check_hotpath(ratio)
    if opts.check in ("broker", "all"):
        check_broker(ratio)
    return 0


if __name__ == "__main__":
    sys.exit(main())
