#!/usr/bin/env python3
"""Hotpath bench regression gate.

Compares the latest smoke run (results/BENCH_hotpath.json) against the
committed full-length numbers at the workspace root. Windows and
machines differ, so the gate is deliberately coarse: single-thread
hit-path throughput must stay within a generous factor of the committed
baseline, and the 1-to-8-thread scaling shape must survive (the
analytics layer must not serialize the hot path).

Environment:
  BENCH_GATE_RATIO    throughput floor as a fraction of the committed
                      baseline (default 0.25; <=0 disables the gate)
  BENCH_GATE_SPEEDUP  minimum 1-to-8-thread speedup (default 1.5)
"""

import json
import os
import sys


def rate(doc, threads):
    cells = doc["modes"]["hit100"]
    return next(c["req_per_s"] for c in cells if c["threads"] == threads)


def main():
    ratio = float(os.environ.get("BENCH_GATE_RATIO", "0.25"))
    if ratio <= 0:
        print("bench gate: disabled (BENCH_GATE_RATIO<=0)")
        return 0
    try:
        baseline = json.load(open("BENCH_hotpath.json"))
    except FileNotFoundError:
        print("bench gate: no committed BENCH_hotpath.json; skipping")
        return 0
    current = json.load(open("results/BENCH_hotpath.json"))

    base, cur = rate(baseline, 1), rate(current, 1)
    floor = base * ratio
    if cur < floor:
        sys.exit(
            "bench gate: hotpath regression — hit100 1-thread {:.0f} req/s "
            "vs committed {:.0f} (floor {:.0f}, ratio {})".format(
                cur, base, floor, ratio
            )
        )
    speedup = current.get("hit100_speedup_8t_over_1t", 0.0)
    speedup_floor = float(os.environ.get("BENCH_GATE_SPEEDUP", "1.5"))
    if speedup < speedup_floor:
        sys.exit(
            "bench gate: 1→8 thread speedup {:.2f}x < {}x "
            "(analytics layer may have serialized the hot path)".format(
                speedup, speedup_floor
            )
        )
    print(
        "bench gate: hotpath within noise ({:.0f} req/s vs committed {:.0f}, "
        "speedup {:.2f}x)".format(cur, base, speedup)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
