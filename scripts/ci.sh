#!/usr/bin/env bash
# The PR gate, runnable locally and from CI: formatting, lints (deny
# warnings), a release build of the whole workspace, and every test.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "######## fmt"
cargo fmt --all --check

echo "######## clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "######## build (release)"
cargo build --workspace --release

echo "######## test"
cargo test --workspace --release --quiet

echo "######## chaos + analytics (fixed seed matrix)"
# The workspace test run above already exercises tests/chaos.rs and
# tests/analytics.rs on their built-in matrix; this loop re-runs them
# one pinned seed at a time so a failure names the seed that
# reproduces it (DESIGN.md §9). The analytics suite proves SLO alerts
# fire under replica slow/hang faults and stay quiet on clean runs.
for seed in 7 1848 3141; do
  echo "-- chaos seed ${seed}"
  CHAOS_SEED="${seed}" cargo test --release --quiet -p dlhub-bench --test chaos
  CHAOS_SEED="${seed}" cargo test --release --quiet -p dlhub-bench --test analytics
done

echo "######## control loop (fixed seed matrix)"
# The workspace test run already exercises tests/control_loop.rs on its
# built-in seed matrix; this loop re-runs the sim/chaos battery one
# pinned seed at a time so a failure names the seed that reproduces it
# (DESIGN.md §14). Each seed's autoscaler decision log must replay
# byte-identically, the steady-load scenario must not flap, and the
# fairness sim must hold its weighted shares and p99 SLO.
for seed in 7 1848 3141; do
  echo "-- control seed ${seed}"
  CONTROL_SEED="${seed}" cargo test --release --quiet -p dlhub-bench --test control_loop
done

echo "######## obs unit tests"
cargo test -p dlhub-obs --release --quiet

echo "######## hotpath smoke (metrics export)"
# Short window; HOTPATH_MIRROR=0 keeps the smoke run from clobbering
# the committed full-length BENCH_hotpath.json at the workspace root.
HOTPATH_MS=100 HOTPATH_MIRROR=0 \
  cargo run --release -p dlhub-bench --bin hotpath >/dev/null
# The artifact must embed a non-empty, well-formed metrics snapshot:
# the echo servable's request counter and its latency histogram.
python3 - <<'EOF'
import json, sys
doc = json.load(open("results/BENCH_hotpath.json"))
metrics = doc.get("metrics")
if not metrics:
    sys.exit("ci: BENCH_hotpath.json has no metrics snapshot")
servables = metrics.get("servables") or []
echo = next((s for s in servables if s.get("servable") == "dlhub/echo"), None)
if echo is None:
    sys.exit("ci: metrics snapshot has no series for dlhub/echo")
if not echo.get("requests", 0) > 0:
    sys.exit("ci: echo series recorded zero requests")
latency = echo.get("request_latency_ns")
if not latency or not latency.get("count", 0) > 0:
    sys.exit("ci: echo series has no request-latency histogram")
# The analytics layer's additions must ride along in the snapshot:
# per-bucket exemplars, the dropped-span counter, and the SLO table.
if "spans_dropped" not in metrics:
    sys.exit("ci: metrics snapshot has no spans_dropped counter")
buckets = echo.get("request_latency_buckets") or []
if not any(b.get("count", 0) > 0 for b in buckets):
    sys.exit("ci: echo series has no populated latency buckets")
if not any(b.get("exemplars") for b in buckets):
    sys.exit("ci: echo latency buckets retained no trace exemplars")
slos = metrics.get("slos") or []
slo = next((s for s in slos if s.get("servable") == "dlhub/echo"), None)
if slo is None:
    sys.exit("ci: snapshot has no SLO entry for dlhub/echo")
if not slo.get("observed", 0) > 0:
    sys.exit("ci: echo SLO observed no traffic")
if slo.get("alerts_fired", 0) != 0:
    sys.exit("ci: loose bench SLO fired an alert on a clean run")
print(
    "ci: metrics snapshot OK ({} requests, p99 {} ns, {} SLO(s), "
    "{} spans dropped)".format(
        echo["requests"], latency["p99"], len(slos), metrics["spans_dropped"]
    )
)
EOF

echo "######## profiler + contention smoke"
# The hotpath smoke above ran the profiler A/B: its artifact must carry
# a well-formed overhead object, and the enabled side must actually
# have sampled. The contention/flight-recorder surface is exercised by
# the dedicated unit suites; this asserts the end-to-end artifact.
python3 - <<'EOF'
import json, sys
doc = json.load(open("results/BENCH_hotpath.json"))
overhead = doc.get("overhead")
if not overhead:
    sys.exit("ci: BENCH_hotpath.json has no profiler overhead A/B")
for key in ("disabled_req_per_s", "enabled_req_per_s", "enabled_over_disabled"):
    if not overhead.get(key, 0) > 0:
        sys.exit("ci: overhead object missing {}".format(key))
if not overhead.get("profiler_samples", 0) > 0:
    sys.exit("ci: profiler A/B collected no samples")
print(
    "ci: profiler smoke OK (ratio {:.3f}, {} samples @ {} Hz)".format(
        overhead["enabled_over_disabled"],
        overhead["profiler_samples"],
        overhead.get("profile_hz", 0),
    )
)
EOF

echo "######## telemetry smoke (time-series export)"
# The hotpath smoke also ran the telemetry collector A/B: the artifact
# must carry the telemetry_overhead object, the collector must have
# taken sampling passes, and the embedded time-series export must hold
# real series. The 0.95 overhead contract itself is enforced by
# bench_gate.py against the committed full-length artifact — a 100 ms
# smoke window is far too noisy for a 5% bound.
python3 - <<'EOF'
import json, sys
doc = json.load(open("results/BENCH_hotpath.json"))
overhead = doc.get("telemetry_overhead")
if not overhead:
    sys.exit("ci: BENCH_hotpath.json has no telemetry collector A/B")
if not overhead.get("telemetry_samples", 0) > 0:
    sys.exit("ci: telemetry A/B took no sampling passes")
export = doc.get("telemetry")
if not export:
    sys.exit("ci: BENCH_hotpath.json has no telemetry time-series export")
if not export.get("samples_taken", 0) > 0:
    sys.exit("ci: telemetry export records zero sampling passes")
series = export.get("series") or []
names = {s.get("name") for s in series}
if "servable.dlhub/echo.requests" not in names:
    sys.exit("ci: telemetry export has no echo request series")
req = next(s for s in series if s["name"] == "servable.dlhub/echo.requests")
points = sum(len(t.get("points", [])) for t in req.get("tiers", []))
if points == 0:
    sys.exit("ci: echo request series exported no points")
print(
    "ci: telemetry smoke OK (ratio {:.3f}, {} passes, {} series, "
    "{} echo points)".format(
        overhead.get("enabled_over_disabled", 0.0),
        overhead["telemetry_samples"],
        len(series),
        points,
    )
)
EOF

echo "######## control-loop smoke (autoscaler + admission A/B)"
# The hotpath smoke also ran the control-loop A/B: the artifact must
# carry the autoscale_overhead object, admission must have accounted
# every request without shedding, and the pinned min==max policy must
# have applied zero scaling decisions. The 0.95 overhead contract is
# enforced by bench_gate.py against the committed full-length artifact.
python3 - <<'EOF'
import json, sys
doc = json.load(open("results/BENCH_hotpath.json"))
overhead = doc.get("autoscale_overhead")
if not overhead:
    sys.exit("ci: BENCH_hotpath.json has no control-loop A/B")
if not overhead.get("admitted", 0) > 0:
    sys.exit("ci: control A/B admitted no requests")
if overhead.get("shed", 0) != 0:
    sys.exit("ci: control A/B shed on an uncontended smoke load")
if overhead.get("scaling_decisions", 0) != 0:
    sys.exit("ci: pinned min==max policy applied scaling decisions")
print(
    "ci: control smoke OK (ratio {:.3f}, {} admitted, {} shed)".format(
        overhead.get("enabled_over_disabled", 0.0),
        overhead["admitted"],
        overhead.get("shed", 0),
    )
)
EOF

echo "######## broker smoke (sharded rings + zero-copy path)"
# Short windows; BROKER_MIRROR=0 keeps the smoke run from clobbering
# the committed full-length BENCH_broker.json at the workspace root.
BROKER_MS=100 BROKER_MIRROR=0 \
  cargo run --release -p dlhub-bench --bin broker >/dev/null

echo "######## workloads smoke (open-loop observatory, seed matrix)"
# Short windows and a small catalog; WORKLOADS_MIRROR=0 keeps the
# smoke runs from clobbering the committed full-length
# BENCH_workloads.json. Seed 7 runs twice: the schedule fingerprints
# in the two artifacts must be byte-identical (the reproducibility
# contract), and a second seed proves the fingerprints actually
# depend on the seed.
for seed in 7 7 1848; do
  echo "-- workloads seed ${seed}"
  WORKLOADS_MS=300 WORKLOADS_FANOUT=120 WORKLOADS_SEED="${seed}" WORKLOADS_MIRROR=0 \
    cargo run --release -p dlhub-bench --bin workloads >/dev/null
  cp results/BENCH_workloads.json "results/BENCH_workloads.seed${seed}.run$((fp_run=${fp_run:-0}+1)).json"
done
python3 - <<'EOF'
import json, sys
def fingerprints(path):
    doc = json.load(open(path))
    return {s["name"]: s["schedule_fingerprint"] for s in doc["scenarios"]}
a = fingerprints("results/BENCH_workloads.seed7.run1.json")
b = fingerprints("results/BENCH_workloads.seed7.run2.json")
c = fingerprints("results/BENCH_workloads.seed1848.run3.json")
if a != b:
    sys.exit("ci: seed 7 schedules differ across runs: {} vs {}".format(a, b))
if a == c:
    sys.exit("ci: seed 7 and seed 1848 produced identical schedules")
doc = json.load(open("results/BENCH_workloads.json"))
names = {s["name"] for s in doc["scenarios"]}
want = {"steady-poisson", "diurnal", "bursty", "zipf-fanout", "hostile-tenant"}
if not want <= names:
    sys.exit("ci: workloads smoke missing scenarios: {}".format(want - names))
for s in doc["scenarios"]:
    ol = s["open_loop"]
    if not s.get("completed", 0) > 0:
        sys.exit("ci: scenario {} completed nothing".format(s["name"]))
    for q in ("p50", "p99", "p999"):
        if ol["corrected"][q] < ol["uncorrected"][q]:
            sys.exit(
                "ci: scenario {} corrected {} below uncorrected".format(s["name"], q)
            )
    if not (s.get("attribution") or {}).get("tail", {}).get("stages"):
        sys.exit("ci: scenario {} has no tail attribution".format(s["name"]))
print(
    "ci: workloads smoke OK (schedules replay byte-identically per "
    "seed; {} scenarios; bursty CO gap {:.2f} ms)".format(
        len(names),
        next(s for s in doc["scenarios"] if s["name"] == "bursty")["open_loop"][
            "gap_p99_ns"
        ]
        / 1e6,
    )
)
EOF

echo "######## bench regression gates"
# Compares the smoke runs against the committed BENCH_hotpath.json and
# BENCH_broker.json with generous noise floors (BENCH_GATE_RATIO /
# BENCH_GATE_SPEEDUP / BROKER_GATE_* tune, BENCH_GATE_RATIO=0
# disables). The broker gate also re-asserts the committed artifact's
# absolute contract: ≥2x the hot-path single-thread baseline on the
# memo-bypass path and ≥6x 1→8-client scaling on the RTT series. The
# overhead gate holds the committed profiler A/B to
# OVERHEAD_GATE_RATIO (default 0.95: enabling the profiler may cost at
# most 5% throughput).
python3 scripts/bench_gate.py

echo "######## ci OK"
