#!/usr/bin/env bash
# The PR gate, runnable locally and from CI: formatting, lints (deny
# warnings), a release build of the whole workspace, and every test.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "######## fmt"
cargo fmt --all --check

echo "######## clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "######## build (release)"
cargo build --workspace --release

echo "######## test"
cargo test --workspace --release --quiet

echo "######## ci OK"
