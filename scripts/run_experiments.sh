#!/usr/bin/env bash
# Regenerate every table/figure of the paper plus all ablations.
# Outputs: results/*.csv plus a combined console log on stdout.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --release --bins

EXPERIMENTS=(table1 table2 fig3 fig4 fig5 fig6 fig7 fig8
             ablation_batching ablation_autoscale ablation_pipeline
             ablation_multitm ablation_memo ablation_fig7_real ablation_fig8_real)

log=$(mktemp)
for exp in "${EXPERIMENTS[@]}"; do
  echo "######## $exp"
  "./target/release/$exp" | tee -a "$log"
  echo
done

echo "######## summary"
echo "shape checks: $(grep -c PASS "$log") PASS, $(grep -c FAIL "$log" || true) FAIL"
rm -f "$log"
