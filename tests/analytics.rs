//! Trace-analytics suite: stage-level latency attribution and SLO
//! burn-rate alerting against the full DLHub stack.
//!
//! Three contracts:
//!
//! * **Exact attribution** — for every evaluation servable (and the
//!   matminer pipeline), reconstructing a request's span tree and
//!   decomposing it into named stages yields numbers that sum exactly
//!   to the root's wall time, which itself matches the latency the
//!   client observed to within scheduling noise.
//! * **Exemplar linkage** — the trace id retained in a latency
//!   histogram bucket resolves to a complete span tree whose
//!   decomposition matches the latency that landed in that bucket.
//! * **Alert fidelity** — under seeded replica slow/hang faults the
//!   SLO engine raises alerts (burn rate over threshold in both
//!   windows); on a clean run with the same objectives it stays
//!   silent. Seeds follow the chaos suite (`CHAOS_SEED` narrows).

use dlhub_core::fault::{site, FaultHandle, FaultKind, FaultPlan, FaultSpec};
use dlhub_core::hub::{TestHub, TestHubBuilder};
use dlhub_core::obs::{SloSpec, Stage, TraceAnalysis};
use dlhub_core::pipeline::Pipeline;
use dlhub_core::serving::ServingConfig;
use dlhub_core::value::Value;
use std::time::Duration;

/// Absolute slack between a span tree's total and the client-measured
/// request latency. The two clocks bracket the same work a few
/// instructions apart, so anything near this bound is a real bug.
const EPSILON: Duration = Duration::from_millis(15);

fn seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
    {
        Some(seed) => vec![seed],
        None => vec![7, 1848, 3141],
    }
}

/// Drive all six evaluation servables (the matminer steps chain, each
/// consuming the previous step's output) and return each request's
/// `(servable, RunResult)`.
fn six_servable_results(hub: &TestHub) -> Vec<(&'static str, dlhub_core::serving::RunResult)> {
    let image = |shape, variant| {
        Value::from_tensor(&dlhub_core::tensor::models::synthetic_image(shape, variant))
    };
    let run = |id: &'static str, input: Value| {
        let result = hub.service.run(&hub.token, id, input).expect(id);
        (id, result)
    };
    let mut results = vec![
        run("dlhub/noop", Value::Null),
        run(
            "dlhub/inception",
            image(&dlhub_core::tensor::models::INCEPTION_INPUT, 1),
        ),
        run(
            "dlhub/cifar10",
            image(&dlhub_core::tensor::models::CIFAR10_INPUT, 1),
        ),
        run("dlhub/matminer-util", Value::Str("NaCl".into())),
    ];
    let parsed = results.last().unwrap().1.value.clone();
    results.push(run("dlhub/matminer-featurize", parsed));
    let feats = results.last().unwrap().1.value.clone();
    results.push(run("dlhub/matminer-model", feats));
    results
}

fn assert_exact_partition(analysis: &TraceAnalysis, label: &str) {
    assert!(analysis.complete, "{label}: span tree incomplete");
    assert_eq!(
        analysis.stage_sum(),
        analysis.total_ns,
        "{label}: stages must sum exactly to the root's wall time"
    );
    for request in &analysis.requests {
        let sum: u64 = request.stages.iter().map(|(_, ns)| ns).sum();
        assert_eq!(
            sum, request.total_ns,
            "{label}: per-request stages must sum to the request total"
        );
    }
}

#[test]
fn stage_decomposition_sums_to_observed_latency_on_every_eval_servable() {
    let hub = TestHub::builder().memo(false).build();
    for (id, result) in six_servable_results(&hub) {
        let analysis = hub
            .service
            .analyze_trace(result.trace)
            .unwrap_or_else(|| panic!("{id}: no analysis for trace {:#x}", result.trace));
        assert_exact_partition(&analysis, id);
        assert_eq!(analysis.kind, "request", "{id}");
        let observed = result.timings.request.as_nanos() as u64;
        let drift = analysis.total_ns.abs_diff(observed);
        assert!(
            drift <= EPSILON.as_nanos() as u64,
            "{id}: span total {}ns vs client-observed {observed}ns (drift {drift}ns)",
            analysis.total_ns
        );
        // A dispatched request must attribute real executor time.
        let execute = analysis
            .stages
            .iter()
            .find(|(s, _)| *s == Stage::Execute)
            .map(|(_, ns)| *ns)
            .unwrap_or(0);
        assert!(execute > 0, "{id}: no execute stage attributed");
    }
}

#[test]
fn pipeline_decomposition_attributes_every_step() {
    let hub = TestHub::builder().memo(false).build();
    let pipeline = Pipeline::new(
        "formation-enthalpy",
        vec![
            "dlhub/matminer-util".into(),
            "dlhub/matminer-featurize".into(),
            "dlhub/matminer-model".into(),
        ],
    );
    hub.service.register_pipeline(&hub.token, pipeline).unwrap();
    let (_, steps, trace) = hub
        .service
        .run_pipeline_traced(&hub.token, "formation-enthalpy", Value::Str("SiO2".into()))
        .unwrap();
    let analysis = hub.service.analyze_trace(trace).expect("pipeline analysis");
    assert_eq!(analysis.kind, "pipeline");
    assert_eq!(analysis.requests.len(), steps.len());
    assert_exact_partition(&analysis, "pipeline");
    // Steps appear in execution order and each matches its span tree
    // against the per-step timing the pipeline runner reported.
    for (breakdown, step) in analysis.requests.iter().zip(&steps) {
        assert_eq!(breakdown.servable, step.servable);
        let observed = step.timings.request.as_nanos() as u64;
        let drift = breakdown.total_ns.abs_diff(observed);
        assert!(
            drift <= EPSILON.as_nanos() as u64,
            "{}: step total {}ns vs observed {observed}ns",
            step.servable,
            breakdown.total_ns
        );
    }
}

#[test]
fn cache_hits_attribute_memo_lookup_without_executor_stages() {
    let hub = TestHub::builder().memo(true).build();
    let input = Value::Str("NaCl".into());
    hub.service
        .run(&hub.token, "dlhub/matminer-util", input.clone())
        .unwrap();
    let hit = hub
        .service
        .run(&hub.token, "dlhub/matminer-util", input)
        .unwrap();
    let analysis = hub.service.analyze_trace(hit.trace).expect("hit analysis");
    assert_exact_partition(&analysis, "cache hit");
    let breakdown = &analysis.requests[0];
    assert!(breakdown.cache_hit);
    let stage = |s: Stage| {
        breakdown
            .stages
            .iter()
            .find(|(k, _)| *k == s)
            .map(|(_, ns)| *ns)
            .unwrap_or(0)
    };
    assert!(stage(Stage::MemoLookup) > 0, "hit must show lookup time");
    assert_eq!(stage(Stage::Execute), 0);
    assert_eq!(stage(Stage::BrokerWait), 0);
}

#[test]
fn p99_bucket_exemplar_resolves_to_a_matching_span_tree() {
    let hub = TestHub::builder().memo(false).build();
    let mut observed = std::collections::HashMap::new();
    let mut latencies = Vec::new();
    for i in 0..40 {
        let result = hub
            .service
            .run(&hub.token, "dlhub/noop", Value::Int(i))
            .unwrap();
        observed.insert(result.trace, result.timings.request.as_nanos() as u64);
        latencies.push(result.timings.request.as_nanos() as u64);
    }
    latencies.sort_unstable();
    let p99 = latencies[(latencies.len() - 1) * 99 / 100];
    let snap = hub.service.metrics_snapshot();
    let (_, series) = snap
        .servables
        .iter()
        .find(|(id, _)| id == "dlhub/noop")
        .expect("noop series");
    // The bucket containing p99 must have retained exemplars; the
    // histogram saw every one of our requests and nothing else.
    let bucket = series
        .request_latency_buckets
        .iter()
        .filter(|b| b.count > 0 && !b.exemplars.is_empty())
        .find(|b| b.bound >= p99)
        .expect("p99 bucket retains an exemplar");
    let trace = *bucket.exemplars.last().unwrap();
    let recorded = *observed
        .get(&trace)
        .expect("exemplar trace id comes from this run's traffic");
    let analysis = hub
        .service
        .analyze_trace(trace)
        .expect("exemplar resolves to a span tree");
    assert_exact_partition(&analysis, "exemplar");
    let drift = analysis.total_ns.abs_diff(recorded);
    assert!(
        drift <= EPSILON.as_nanos() as u64,
        "exemplar trace {trace:#x}: decomposition {}ns vs recorded {recorded}ns",
        analysis.total_ns
    );
}

/// An objective tight enough that a 200ms injected stall breaches it
/// on every request, while the clean in-process path stays far under.
fn tight_slo() -> SloSpec {
    SloSpec::new("dlhub/noop", Duration::from_millis(100))
        .latency_objective(0.9)
        .windows(Duration::from_millis(200), Duration::from_secs(2))
        .burn_threshold(2.0)
}

fn slo_hub(faults: FaultHandle) -> TestHubBuilder {
    TestHub::builder()
        .memo(false)
        .faults(faults)
        .config(ServingConfig {
            request_timeout: Duration::from_secs(3),
            request_deadline: Duration::from_secs(12),
            max_retries: 3,
            retry_backoff: Duration::from_millis(2),
            retry_execution_errors: true,
            ..ServingConfig::default()
        })
        .slo(tight_slo())
}

fn alerts_fired(hub: &TestHub) -> u64 {
    hub.service
        .metrics_snapshot()
        .slos
        .iter()
        .find(|s| s.servable == "dlhub/noop")
        .map(|s| s.alerts_fired)
        .unwrap_or(0)
}

#[test]
fn slow_replicas_burn_the_latency_budget_and_fire_the_alert() {
    for seed in seeds() {
        let faults = FaultPlan::seeded(seed)
            .inject(
                site::REPLICA,
                FaultSpec::new(FaultKind::Slow).delay(Duration::from_millis(200)),
            )
            .build();
        let hub = slo_hub(faults).build();
        for i in 0..6 {
            hub.service
                .run(&hub.token, "dlhub/noop", Value::Int(i))
                .expect("slow, not broken");
        }
        assert!(
            alerts_fired(&hub) >= 1,
            "seed {seed}: sustained 200ms stalls against a 100ms objective must fire"
        );
        let events = hub.service.trace_export(None);
        let alerts = events.named("slo_alert");
        assert!(!alerts.is_empty(), "seed {seed}: alert event missing");
        assert_eq!(alerts[0].attr("servable"), Some("dlhub/noop"));
        assert_eq!(alerts[0].attr("state"), Some("firing"));
        assert_eq!(alerts[0].attr("objective"), Some("latency"));
    }
}

#[test]
fn hung_replicas_fire_the_alert_through_retries() {
    for seed in seeds() {
        // Hangs blow the executor reply timeout; attempts retry and
        // requests resolve slow (or exhausted) — either way the SLO
        // engine must notice.
        let faults = FaultPlan::seeded(seed)
            .inject(
                site::REPLICA,
                FaultSpec::new(FaultKind::Hang)
                    .delay(Duration::from_millis(800))
                    .probability(0.5),
            )
            .build();
        let hub = slo_hub(faults)
            .executor_reply_timeout(Duration::from_millis(300))
            .build();
        for i in 0..6 {
            let _ = hub.service.run(&hub.token, "dlhub/noop", Value::Int(i));
        }
        assert!(
            alerts_fired(&hub) >= 1,
            "seed {seed}: hang-induced slowness must fire the alert"
        );
    }
}

#[test]
fn clean_traffic_with_the_same_objectives_stays_quiet() {
    for seed in seeds() {
        let hub = slo_hub(FaultPlan::seeded(seed).build()).build();
        for i in 0..20 {
            hub.service
                .run(&hub.token, "dlhub/noop", Value::Int(i))
                .unwrap();
        }
        let snap = hub.service.metrics_snapshot();
        let slo = snap
            .slos
            .iter()
            .find(|s| s.servable == "dlhub/noop")
            .expect("slo tracked");
        assert_eq!(
            slo.alerts_fired, 0,
            "seed {seed}: clean run fired an alert (burn fast {:.2} / slow {:.2})",
            slo.latency_burn_fast, slo.latency_burn_slow
        );
        assert!(!slo.firing, "seed {seed}");
        assert!(slo.observed >= 20, "seed {seed}");
        assert!(
            hub.service.trace_export(None).named("slo_alert").is_empty(),
            "seed {seed}: stray alert event"
        );
        // Satellite sanity: the snapshot carries the dropped-span
        // counter and it stays zero under this light load.
        assert_eq!(snap.spans_dropped, 0, "seed {seed}");
    }
}
