//! Chaos suite: the full DLHub stack under seeded, deterministic fault
//! injection.
//!
//! Every test threads one [`FaultPlan`] through the whole deployment
//! (broker, Task Managers, replicas, memo cache, batcher) via
//! `TestHubBuilder::faults`, drives the paper's six evaluation
//! servables through it, and asserts the recovery contract:
//!
//! * every request either completes or fails with a *typed* error
//!   (`Exhausted`, `Execution`, `Timeout`) within its deadline — no
//!   hangs, no stuck `Pending` tasks, no lost broker messages;
//! * fault schedules are a pure function of the seed, so a failing run
//!   is reproducible with `CHAOS_SEED=<seed> cargo test --test chaos`.
//!
//! The default seed matrix is `[7, 1848, 3141]`; `CHAOS_SEED` narrows
//! it to one seed.

use dlhub_core::admission::AdmissionConfig;
use dlhub_core::autoscale::ControlPolicy;
use dlhub_core::executor::HealthPolicy;
use dlhub_core::fault::{site, FaultHandle, FaultKind, FaultPlan, FaultSpec};
use dlhub_core::hub::{TestHub, TestHubBuilder};
use dlhub_core::servable::{servable_fn, ModelType};
use dlhub_core::serving::ServingConfig;
use dlhub_core::task::TaskStatus;
use dlhub_core::value::Value;
use dlhub_core::DlhubError;
use dlhub_queue::TopicConfig;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Broker lease used by every chaos hub: short enough that a crashed
/// Task Manager's task is redelivered within one client attempt.
const LEASE: Duration = Duration::from_millis(120);

/// Per-request wall-clock slack on top of the configured deadline
/// (scheduler noise, pool warmup) before a test declares a hang.
const SLACK: Duration = Duration::from_secs(3);

fn seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
    {
        Some(seed) => vec![seed],
        None => vec![7, 1848, 3141],
    }
}

fn chaos_config() -> ServingConfig {
    // Per-attempt timeout and deadline are sized for the heavyweight
    // evaluation servables (Inception, CIFAR-10) on a loaded
    // single-core CI box; faulted attempts fail much faster than this.
    ServingConfig {
        request_timeout: Duration::from_secs(3),
        request_deadline: Duration::from_secs(12),
        max_retries: 3,
        retry_backoff: Duration::from_millis(2),
        retry_execution_errors: true,
        ..ServingConfig::default()
    }
}

/// A hub with chaos-tuned recovery knobs: short lease, bounded reply
/// wait, fast quarantine.
fn chaos_builder(faults: FaultHandle) -> TestHubBuilder {
    TestHub::builder()
        .memo(false)
        .config(chaos_config())
        .faults(faults)
        .task_topic_config(TopicConfig {
            lease: LEASE,
            max_attempts: 10,
            ..TopicConfig::default()
        })
        .replica_health(HealthPolicy {
            quarantine_after: 2,
            quarantine_for: Duration::from_millis(80),
        })
        // Generous: real Inception inference takes >300ms on a loaded
        // single-core box. The hung-replica test tightens this locally.
        .executor_reply_timeout(Duration::from_secs(5))
}

fn counter(hub: &TestHub, name: &str) -> u64 {
    hub.service
        .metrics_snapshot()
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

fn gauge(hub: &TestHub, name: &str) -> i64 {
    hub.service
        .metrics_snapshot()
        .gauges
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

/// The recovery contract for one synchronous request: an answer —
/// success or typed failure — within the deadline. Returns the value on
/// success so chained servables can consume it.
fn run_contract(hub: &TestHub, id: &str, input: Value) -> Option<Value> {
    let started = Instant::now();
    let outcome = hub.service.run(&hub.token, id, input);
    let elapsed = started.elapsed();
    assert!(
        elapsed < chaos_config().request_deadline + SLACK,
        "{id} blew its deadline: {elapsed:?}"
    );
    match outcome {
        Ok(result) => Some(result.value),
        Err(
            ref err @ (DlhubError::Exhausted { .. }
            | DlhubError::Execution { .. }
            | DlhubError::Timeout
            | DlhubError::Transport(_)),
        ) => {
            eprintln!("chaos: {id} failed typed after {elapsed:?}: {err}");
            None
        }
        Err(other) => panic!("{id} failed untyped: {other:?}"),
    }
}

/// "No silent losses": wait for abandoned leases to redeliver and
/// drain, then require the task topic's ledger to balance exactly —
/// everything enqueued was either acked or dead-lettered.
fn assert_ledger_drains(hub: &TestHub, seed: u64) {
    let topic = chaos_config().task_topic;
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let stats = hub.broker.stats(&topic).unwrap();
        if stats.outstanding() == 0 {
            assert!(stats.enqueued > 0, "seed {seed}: nothing was enqueued");
            assert_eq!(
                stats.enqueued,
                stats.acked + stats.dead_lettered,
                "seed {seed}: ledger out of balance: {stats:?}"
            );
            return;
        }
        assert!(
            Instant::now() < deadline,
            "seed {seed}: {} tasks never drained: {:?}",
            stats.outstanding(),
            stats
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn cifar_image(variant: u64) -> Value {
    Value::from_tensor(&dlhub_core::tensor::models::synthetic_image(
        &dlhub_core::tensor::models::CIFAR10_INPUT,
        variant,
    ))
}

fn inception_image(variant: u64) -> Value {
    Value::from_tensor(&dlhub_core::tensor::models::synthetic_image(
        &dlhub_core::tensor::models::INCEPTION_INPUT,
        variant,
    ))
}

/// Drive all six evaluation servables for `rounds` rounds, asserting
/// the recovery contract on every request. Returns (requests, successes).
fn six_servable_workload(hub: &TestHub, rounds: u64) -> (u64, u64) {
    let mut requests = 0;
    let mut successes = 0;
    let mut record = |value: Option<Value>| {
        requests += 1;
        if value.is_some() {
            successes += 1;
        }
        value
    };
    for round in 0..rounds {
        record(run_contract(hub, "dlhub/noop", Value::Null));
        record(run_contract(hub, "dlhub/cifar10", cifar_image(round)));
        record(run_contract(hub, "dlhub/inception", inception_image(round)));
        let formula = ["NaCl", "SiO2", "Fe2O3"][round as usize % 3];
        let parsed = record(run_contract(
            hub,
            "dlhub/matminer-util",
            Value::Str(formula.into()),
        ));
        // Downstream steps only run when the upstream survived its
        // faults; a typed upstream failure legitimately ends the chain.
        if let Some(parsed) = parsed {
            if let Some(feats) = record(run_contract(hub, "dlhub/matminer-featurize", parsed)) {
                record(run_contract(hub, "dlhub/matminer-model", feats));
            }
        }
    }
    (requests, successes)
}

#[test]
fn replica_errors_are_retried_and_the_workload_survives() {
    for seed in seeds() {
        let faults = FaultPlan::seeded(seed)
            .inject(
                site::REPLICA,
                FaultSpec::new(FaultKind::Error).probability(0.3).max(12),
            )
            .build();
        let hub = chaos_builder(faults.clone()).build();
        let (requests, successes) = six_servable_workload(&hub, 2);
        assert!(requests >= 10, "seed {seed}: workload too small");
        // The fault budget (12 firings at p=0.3 over >=10 requests with
        // 4 attempts each) cannot exhaust every request.
        assert!(successes > 0, "seed {seed}: nothing survived");
        if faults.injected(site::REPLICA) > 0 {
            assert!(
                counter(&hub, "request_retries_total") > 0,
                "seed {seed}: faults fired but nothing was retried"
            );
        }
    }
}

#[test]
fn replica_panics_trip_quarantine_and_the_pool_recovers() {
    for seed in seeds() {
        // Deterministic single-replica deployment: the first four jobs
        // panic, striking the replica out twice (quarantine_after = 2).
        let faults = FaultPlan::seeded(seed)
            .inject(site::REPLICA, FaultSpec::new(FaultKind::Panic).max(4))
            .build();
        let hub = chaos_builder(faults.clone())
            .replicas(1)
            .consumers(1)
            .task_managers(1)
            .build();
        // Request 1 burns the whole retry budget on panics (4 attempts,
        // 4 faults) and must surface a typed exhaustion.
        let started = Instant::now();
        let err = hub
            .service
            .run(&hub.token, "dlhub/noop", Value::Null)
            .unwrap_err();
        match err {
            DlhubError::Exhausted {
                attempts,
                ref last_error,
                ..
            } => {
                assert_eq!(attempts, 4, "seed {seed}");
                assert!(last_error.contains("panic"), "seed {seed}: {last_error}");
            }
            other => panic!("seed {seed}: unexpected {other:?}"),
        }
        assert!(started.elapsed() < chaos_config().request_deadline + SLACK);
        // The fault budget is spent; the restarted replica serves again.
        let ok = hub
            .service
            .run(&hub.token, "dlhub/noop", Value::Null)
            .unwrap();
        assert_eq!(ok.value, Value::Str("hello world".into()));
        assert_eq!(faults.injected(site::REPLICA), 4, "seed {seed}");
        // 4 consecutive failures at quarantine_after=2 => 2 restarts,
        // and nothing is left sitting in quarantine.
        assert_eq!(counter(&hub, "replica_restarts_total"), 2, "seed {seed}");
        assert_eq!(gauge(&hub, "replicas_quarantined"), 0, "seed {seed}");
    }
}

#[test]
fn tm_crashes_redeliver_the_leased_task() {
    for seed in seeds() {
        // The first two task deliveries hit a "crashing" consumer that
        // abandons them unsettled; lease expiry must bring each task
        // back to a surviving consumer. (Single TM: both firings land
        // on the first request's delivery and redelivery, so the test
        // isolates lease-expiry recovery from cold replica pools.)
        let faults = FaultPlan::seeded(seed)
            .inject(site::TM_CRASH, FaultSpec::new(FaultKind::Crash).max(2))
            .build();
        let hub = chaos_builder(faults.clone()).build();
        let (requests, successes) = six_servable_workload(&hub, 1);
        assert_eq!(
            requests, successes,
            "seed {seed}: a crashed TM lost a task ({successes}/{requests})"
        );
        assert_eq!(counter(&hub, "tm_crashes_injected_total"), 2, "seed {seed}");
        let stats = hub.broker.stats(&chaos_config().task_topic).unwrap();
        assert!(
            stats.redelivered >= 2,
            "seed {seed}: crashes were not redelivered ({:?})",
            stats
        );
    }
}

#[test]
fn dropped_broker_sends_exhaust_with_a_typed_error() {
    for seed in seeds() {
        // Every broker send silently vanishes: requests can only time
        // out, attempt by attempt, into a typed exhaustion — never
        // hang. No model ever executes, so a tight per-attempt timeout
        // keeps the exhaustion fast.
        let faults = FaultPlan::seeded(seed)
            .inject(site::BROKER_SEND, FaultSpec::new(FaultKind::Drop))
            .build();
        let config = ServingConfig {
            request_timeout: Duration::from_millis(250),
            request_deadline: Duration::from_secs(2),
            ..chaos_config()
        };
        let hub = chaos_builder(faults.clone()).config(config.clone()).build();
        for id in ["dlhub/noop", "dlhub/matminer-util"] {
            let input = if id == "dlhub/noop" {
                Value::Null
            } else {
                Value::Str("NaCl".into())
            };
            let started = Instant::now();
            let err = hub.service.run(&hub.token, id, input).unwrap_err();
            match err {
                DlhubError::Exhausted {
                    attempts,
                    ref last_error,
                    ..
                } => {
                    assert_eq!(attempts, 4, "seed {seed} {id}");
                    assert!(
                        last_error.contains("timed out"),
                        "seed {seed}: {last_error}"
                    );
                }
                other => panic!("seed {seed} {id}: unexpected {other:?}"),
            }
            assert!(
                started.elapsed() < config.request_deadline + SLACK,
                "seed {seed} {id}: exhaustion blew the deadline"
            );
        }
        let stats = hub.broker.stats(&chaos_config().task_topic).unwrap();
        assert!(stats.dropped >= 8, "seed {seed}: {stats:?}");
        // Dropped sends never entered the queue: conservation holds.
        assert_eq!(stats.enqueued, 0, "seed {seed}: {stats:?}");
        assert!(counter(&hub, "broker_dropped_total") >= 8, "seed {seed}");
    }
}

#[test]
fn abandoned_broker_receives_only_delay_delivery() {
    for seed in seeds() {
        // A leased-then-abandoned receive must cost one lease expiry,
        // not the message. An abandoned *reply* receive can legally
        // push one attempt past its timeout (reply topics keep the
        // default 30s lease), so the contract here is delayed-not-lost:
        // every request resolves typed within its deadline, most
        // succeed, and the broker ledger still balances.
        let faults = FaultPlan::seeded(seed)
            .inject(
                site::BROKER_RECV,
                FaultSpec::new(FaultKind::Drop).probability(0.2).max(5),
            )
            .build();
        let hub = chaos_builder(faults.clone()).build();
        let (requests, successes) = six_servable_workload(&hub, 1);
        assert!(requests >= 4, "seed {seed}: workload too small");
        assert!(successes > 0, "seed {seed}: every request was lost");
        assert_ledger_drains(&hub, seed);
    }
}

#[test]
fn hung_replicas_trip_the_reply_timeout_and_retry() {
    for seed in seeds() {
        // The first two jobs hang for 800ms against a 300ms executor
        // reply timeout: each attempt fails fast and the third succeeds.
        let faults = FaultPlan::seeded(seed)
            .inject(
                site::REPLICA,
                FaultSpec::new(FaultKind::Hang)
                    .delay(Duration::from_millis(800))
                    .max(2),
            )
            .build();
        let hub = chaos_builder(faults.clone())
            .executor_reply_timeout(Duration::from_millis(300))
            .build();
        let started = Instant::now();
        let result = hub
            .service
            .run(&hub.token, "dlhub/noop", Value::Null)
            .expect("retries must outlast the hung replicas");
        assert_eq!(result.value, Value::Str("hello world".into()));
        assert!(
            started.elapsed() < chaos_config().request_deadline + SLACK,
            "seed {seed}: hung replica wedged the request"
        );
        assert_eq!(faults.injected(site::REPLICA), 2, "seed {seed}");
        assert!(counter(&hub, "request_retries_total") >= 2, "seed {seed}");
    }
}

#[test]
fn memo_faults_degrade_the_cache_without_failing_requests() {
    for seed in seeds() {
        // Forced lookup misses + dropped inserts: the cache contributes
        // nothing, correctness is untouched.
        let faults = FaultPlan::seeded(seed)
            .inject(site::MEMO_GET, FaultSpec::new(FaultKind::Error))
            .inject(site::MEMO_PUT, FaultSpec::new(FaultKind::Drop))
            .build();
        let hub = chaos_builder(faults.clone()).memo(true).build();
        let input = Value::Str("NaCl".into());
        let first = hub
            .service
            .run(&hub.token, "dlhub/matminer-util", input.clone())
            .unwrap();
        let second = hub
            .service
            .run(&hub.token, "dlhub/matminer-util", input)
            .unwrap();
        assert_eq!(first.value, second.value, "seed {seed}");
        assert!(!second.timings.cache_hit, "seed {seed}: impossible hit");
        assert_eq!(hub.service.memo_stats().hits, 0, "seed {seed}");
        assert!(faults.injected(site::MEMO_GET) >= 2, "seed {seed}");
        assert!(faults.injected(site::MEMO_PUT) >= 1, "seed {seed}");
    }
}

#[test]
fn batch_flush_faults_fail_the_batch_typed_then_recover() {
    for seed in seeds() {
        let faults = FaultPlan::seeded(seed)
            .inject(site::BATCH_FLUSH, FaultSpec::new(FaultKind::Error).max(1))
            .build();
        let hub = chaos_builder(faults).build();
        let err = hub
            .service
            .run_batched(&hub.token, "dlhub/noop", Value::Null)
            .unwrap_err();
        match err {
            DlhubError::Execution { ref message, .. } => {
                assert!(message.contains("injected batch-flush"), "seed {seed}");
            }
            other => panic!("seed {seed}: unexpected {other:?}"),
        }
        // The batcher itself survives its flush failing.
        let ok = hub
            .service
            .run_batched(&hub.token, "dlhub/noop", Value::Null)
            .unwrap();
        assert_eq!(ok, Value::Str("hello world".into()), "seed {seed}");
    }
}

#[test]
fn fault_schedules_are_deterministic_per_seed() {
    // Identical seed + identical sequential workload => byte-identical
    // outcomes and byte-identical injection logs, run after run. Uses a
    // single-replica single-consumer hub so arrival order is the
    // request order.
    fn run_once(seed: u64) -> (Vec<String>, Vec<String>) {
        let faults = FaultPlan::seeded(seed)
            .inject(
                site::REPLICA,
                FaultSpec::new(FaultKind::Error).probability(0.4),
            )
            .build();
        let hub = chaos_builder(faults.clone())
            .replicas(1)
            .consumers(1)
            .task_managers(1)
            .build();
        let mut outcomes = Vec::new();
        for i in 0..12 {
            let outcome = if i % 2 == 0 {
                hub.service
                    .run(&hub.token, "dlhub/noop", Value::Null)
                    .map(|r| format!("{:?}", r.value))
            } else {
                hub.service
                    .run(&hub.token, "dlhub/matminer-util", Value::Str("NaCl".into()))
                    .map(|r| format!("{:?}", r.value))
            };
            outcomes.push(match outcome {
                Ok(v) => format!("ok:{v}"),
                Err(e) => format!("err:{e}"),
            });
        }
        let log = faults
            .injections()
            .iter()
            .map(|i| format!("{}@{}:{:?}", i.site, i.seq, i.kind))
            .collect();
        (outcomes, log)
    }

    let mut schedules = Vec::new();
    for seed in seeds() {
        let (outcomes_a, log_a) = run_once(seed);
        let (outcomes_b, log_b) = run_once(seed);
        assert_eq!(outcomes_a, outcomes_b, "seed {seed}: outcomes diverged");
        assert_eq!(log_a, log_b, "seed {seed}: injection logs diverged");
        schedules.push(log_a);
    }
    if schedules.len() > 1 {
        // Different seeds must not all collapse onto one schedule.
        assert!(
            schedules.windows(2).any(|w| w[0] != w[1]),
            "all seeds produced identical schedules"
        );
    }
}

#[test]
fn failed_expired_and_unknown_tasks_stay_distinguishable() {
    for seed in seeds() {
        // A TM crash forces a re-dispatch on the async path; the task
        // must still resolve, and afterwards the three terminal answers
        // of `task_status` — Failed, ExpiredTask, UnknownTask — must
        // stay tellable apart.
        let faults = FaultPlan::seeded(seed)
            .inject(site::TM_CRASH, FaultSpec::new(FaultKind::Crash).max(1))
            .build();
        let hub = chaos_builder(faults).task_managers(2).build();
        hub.publish_simple(
            "boom",
            ModelType::PythonFunction,
            servable_fn(|_| Err("synthetic detonation".into())),
        );

        // Async run that survives the injected crash via redelivery.
        let survivor = hub
            .service
            .run_async(&hub.token, "dlhub/noop", Value::Null)
            .unwrap();
        match survivor.wait(chaos_config().request_deadline + SLACK) {
            TaskStatus::Completed(v) => assert_eq!(v, Value::Str("hello world".into())),
            other => panic!("seed {seed}: crash lost the async task: {other:?}"),
        }

        // Async run that fails every attempt: terminal Failed with the
        // attempt count (execution errors are retried in chaos config).
        let doomed = hub
            .service
            .run_async(&hub.token, "dlhub/boom", Value::Null)
            .unwrap();
        match doomed.wait(chaos_config().request_deadline + SLACK) {
            TaskStatus::Failed {
                attempts,
                last_error,
            } => {
                assert_eq!(attempts, 4, "seed {seed}");
                assert!(last_error.contains("synthetic detonation"), "{last_error}");
            }
            other => panic!("seed {seed}: unexpected {other:?}"),
        }
        assert!(matches!(
            hub.service.task_status(&doomed.id),
            Ok(TaskStatus::Failed { attempts: 4, .. })
        ));

        // Forgetting flips Failed into ExpiredTask — not UnknownTask.
        hub.service.forget_task(&doomed.id);
        assert!(matches!(
            hub.service.task_status(&doomed.id),
            Err(DlhubError::ExpiredTask(_))
        ));
        assert!(matches!(
            hub.service.task_status("task-never-existed"),
            Err(DlhubError::UnknownTask(_))
        ));
    }
}

#[test]
fn combined_chaos_loses_nothing() {
    for seed in seeds() {
        // Several fault classes at once, each budgeted: replica errors,
        // TM crashes after a warmup, abandoned receives, dropped memo
        // inserts. Every request must still resolve, and the broker's
        // ledger must balance afterwards.
        let faults = FaultPlan::seeded(seed)
            .inject(
                site::REPLICA,
                FaultSpec::new(FaultKind::Error).probability(0.2).max(8),
            )
            .inject(
                site::TM_CRASH,
                FaultSpec::new(FaultKind::Crash).after(2).max(2),
            )
            .inject(
                site::BROKER_RECV,
                FaultSpec::new(FaultKind::Drop).probability(0.1).max(4),
            )
            .inject(
                site::MEMO_PUT,
                FaultSpec::new(FaultKind::Drop).probability(0.5),
            )
            .build();
        let hub = chaos_builder(faults.clone())
            .memo(true)
            .task_managers(2)
            .build();

        // Synchronous six-servable sweep under fire.
        let (requests, _) = six_servable_workload(&hub, 2);
        assert!(requests >= 10, "seed {seed}");

        // Async burst: every handle must leave Pending within deadline.
        let handles: Vec<_> = (0..6)
            .map(|_| {
                hub.service
                    .run_async(&hub.token, "dlhub/noop", Value::Null)
                    .unwrap()
            })
            .collect();
        for handle in &handles {
            match handle.wait(chaos_config().request_deadline + SLACK) {
                TaskStatus::Completed(_) | TaskStatus::Failed { .. } => {}
                TaskStatus::Pending => panic!("seed {seed}: task {} stuck Pending", handle.id),
            }
        }

        assert_ledger_drains(&hub, seed);
    }
}

#[test]
fn terminal_failures_freeze_deterministic_flight_bundles() {
    // Same seed, same workload => the flight recorder freezes the same
    // bundles with byte-identical fingerprints, run after run. The
    // fingerprint hashes only workload-determined trigger fields
    // (servable, attempts, error), never timestamps or burn rates.
    fn run_once(seed: u64) -> Vec<(String, u64)> {
        let faults = FaultPlan::seeded(seed)
            .inject(site::REPLICA, FaultSpec::new(FaultKind::Error).max(4))
            .build();
        let hub = chaos_builder(faults)
            .replicas(1)
            .consumers(1)
            .task_managers(1)
            .config(ServingConfig {
                recorder_capacity: 8,
                ..chaos_config()
            })
            .build();
        // The fault budget (4 errors, 4 attempts) exhausts exactly the
        // first async request; the second must succeed and freeze
        // nothing further.
        let doomed = hub
            .service
            .run_async(&hub.token, "dlhub/noop", Value::Null)
            .unwrap();
        match doomed.wait(chaos_config().request_deadline + SLACK) {
            TaskStatus::Failed { attempts, .. } => assert_eq!(attempts, 4, "seed {seed}"),
            other => panic!("seed {seed}: unexpected {other:?}"),
        }
        let survivor = hub
            .service
            .run_async(&hub.token, "dlhub/noop", Value::Null)
            .unwrap();
        assert!(
            matches!(
                survivor.wait(chaos_config().request_deadline + SLACK),
                TaskStatus::Completed(_)
            ),
            "seed {seed}: budget-spent request failed"
        );
        let bundles = hub.service.flight_bundles();
        assert_eq!(bundles.len(), 1, "seed {seed}: one failure, one bundle");
        assert_eq!(bundles[0].trigger.kind(), "task_failed");
        bundles
            .iter()
            .map(|b| (b.trigger.kind().to_string(), b.fingerprint()))
            .collect()
    }

    for seed in seeds() {
        let first = run_once(seed);
        let second = run_once(seed);
        assert_eq!(first, second, "seed {seed}: bundle fingerprints diverged");
    }
}

#[test]
fn chaos_slo_firing_freezes_one_deterministic_bundle() {
    // Every replica execution fails, so the availability objective
    // burns deterministically; the firing transition must freeze
    // exactly one bundle whose fingerprint is seed-stable.
    fn run_once(seed: u64) -> (String, u64) {
        let faults = FaultPlan::seeded(seed)
            .inject(site::REPLICA, FaultSpec::new(FaultKind::Error))
            .build();
        let hub = chaos_builder(faults)
            .replicas(1)
            .consumers(1)
            .task_managers(1)
            .config(ServingConfig {
                recorder_capacity: 4,
                // Fail fast: execution errors are terminal here.
                retry_execution_errors: false,
                slos: vec![
                    dlhub_core::obs::SloSpec::new("dlhub/noop", Duration::from_secs(5))
                        .availability_objective(0.5)
                        .windows(Duration::from_millis(200), Duration::from_secs(2)),
                ],
                ..chaos_config()
            })
            .build();
        for _ in 0..20 {
            let _ = hub.service.run(&hub.token, "dlhub/noop", Value::Null);
        }
        let bundles = hub.service.flight_bundles();
        assert_eq!(
            bundles.len(),
            1,
            "seed {seed}: one firing transition, one bundle"
        );
        let bundle = &bundles[0];
        assert_eq!(bundle.trigger.kind(), "slo_firing", "seed {seed}");
        assert!(
            bundle.trigger.summary().contains("dlhub/noop"),
            "seed {seed}: {}",
            bundle.trigger.summary()
        );
        (bundle.trigger.kind().to_string(), bundle.fingerprint())
    }

    for seed in seeds() {
        assert_eq!(
            run_once(seed),
            run_once(seed),
            "seed {seed}: SLO bundle fingerprint diverged"
        );
    }
}

#[test]
fn quarantined_replicas_are_never_counted_as_capacity_by_the_control_loop() {
    const SEC: u64 = 1_000_000_000;
    for seed in seeds() {
        // The first job errors out: with quarantine_after = 1 its
        // replica is benched for 10 s while the retry lands on the
        // healthy one. The control loop then reconciles against a
        // pool that is half quarantine.
        let faults = FaultPlan::seeded(seed)
            .inject(site::REPLICA, FaultSpec::new(FaultKind::Error).max(1))
            .build();
        let hub = chaos_builder(faults)
            .replicas(2)
            .consumers(1)
            .task_managers(1)
            .replica_health(HealthPolicy {
                quarantine_after: 1,
                quarantine_for: Duration::from_secs(10),
            })
            .config(ServingConfig {
                autoscale: Some(ControlPolicy {
                    min_samples: 1,
                    cooldown: Duration::ZERO,
                    signal_window: Duration::from_secs(10),
                    ..ControlPolicy::default()
                }),
                ..chaos_config()
            })
            .build();
        hub.publish_simple(
            "m",
            ModelType::PythonFunction,
            servable_fn(|v| Ok(v.clone())),
        );
        hub.service
            .run(&hub.token, "dlhub/m", Value::Null)
            .expect("retry must outlive the faulted replica");
        let deadline = Instant::now() + Duration::from_secs(3);
        while hub.parsl.quarantined("dlhub/m") == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(
            hub.parsl.quarantined("dlhub/m"),
            1,
            "seed {seed}: replica never quarantined"
        );
        // Scripted 100 ms profile so the virtual load below is heavy.
        for _ in 0..10 {
            hub.service.profiles().record(
                "dlhub/m",
                Duration::from_millis(100),
                Duration::from_millis(103),
                1,
            );
        }
        hub.service
            .obs()
            .enable_telemetry_manual(Duration::from_secs(1));
        // Light load first: demand says one replica is plenty, but the
        // loop must not scale the only *healthy* replica away…
        for s in 0..3u64 {
            hub.service.obs().metrics.series("dlhub/m").requests.add(2);
            hub.service.obs().telemetry.sample_now((s + 1) * SEC);
            hub.service.reconcile_at((s + 1) * SEC);
        }
        assert!(
            hub.parsl.replicas("dlhub/m") > hub.parsl.quarantined("dlhub/m"),
            "seed {seed}: quarantined replica was counted as capacity"
        );
        // …and an up-scale under pressure must size against healthy
        // capacity (1), not nominal (2).
        for s in 3..8u64 {
            hub.service.obs().metrics.series("dlhub/m").requests.add(40);
            hub.service.obs().telemetry.sample_now((s + 1) * SEC);
            hub.service.reconcile_at((s + 1) * SEC);
        }
        let decisions = hub.service.reconciler().unwrap().decisions();
        assert!(!decisions.is_empty(), "seed {seed}: loop never acted");
        for d in &decisions {
            assert!(d.to >= 2, "seed {seed}: decision left nothing healthy: {d}");
        }
        assert!(
            hub.parsl.replicas("dlhub/m") > 2,
            "seed {seed}: up-scale never bought healthy capacity"
        );
    }
}

#[test]
fn overload_sheds_stay_typed_overloaded_under_chaos() {
    for seed in seeds() {
        // Replica faults rage on while the front door is saturated: a
        // shed must surface as `Overloaded` with its back-off — never
        // as the retry path's `Exhausted`.
        let faults = FaultPlan::seeded(seed)
            .inject(
                site::REPLICA,
                FaultSpec::new(FaultKind::Error).probability(0.3).max(2),
            )
            .build();
        let hub = chaos_builder(faults)
            .config(ServingConfig {
                admission: Some(AdmissionConfig {
                    max_inflight: 1,
                    fair_share_at: 1.0,
                    retry_after: Duration::from_millis(40),
                    ..AdmissionConfig::default()
                }),
                ..chaos_config()
            })
            .build();
        hub.publish_simple(
            "slow",
            ModelType::PythonFunction,
            servable_fn(|v| {
                std::thread::sleep(Duration::from_millis(400));
                Ok(v.clone())
            }),
        );
        let service = Arc::clone(&hub.service);
        let token = hub.token.clone();
        let holder = std::thread::spawn(move || service.run(&token, "dlhub/slow", Value::Null));
        let deadline = Instant::now() + Duration::from_secs(5);
        while hub.service.admission().unwrap().inflight() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(
            hub.service.admission().unwrap().inflight(),
            1,
            "seed {seed}: holder never admitted"
        );
        let started = Instant::now();
        let err = hub
            .service
            .run(&hub.token, "dlhub/noop", Value::Null)
            .unwrap_err();
        match err {
            DlhubError::Overloaded { retry_after_ms } => {
                assert_eq!(retry_after_ms, 40, "seed {seed}");
            }
            DlhubError::Exhausted { .. } => {
                panic!("seed {seed}: shed surfaced as Exhausted")
            }
            other => panic!("seed {seed}: unexpected {other:?}"),
        }
        // Shedding happens at the door, before any retry loop burns
        // the deadline.
        assert!(
            started.elapsed() < Duration::from_secs(1),
            "seed {seed}: shed was not early: {:?}",
            started.elapsed()
        );
        assert!(counter(&hub, "requests_shed_total") >= 1, "seed {seed}");
        // The admitted request rides out its faults and completes.
        let held = holder.join().unwrap();
        assert!(held.is_ok(), "seed {seed}: admitted request died: {held:?}");
    }
}

#[test]
fn disabled_fault_handle_changes_nothing() {
    // The production configuration: a default (disabled) handle. The
    // stack behaves exactly as the seed tests expect, and no fault
    // bookkeeping exists anywhere.
    let faults = FaultHandle::default();
    let hub = chaos_builder(faults.clone()).build();
    let (requests, successes) = six_servable_workload(&hub, 1);
    assert_eq!(requests, successes);
    assert!(faults.injections().is_empty());
    assert_eq!(counter(&hub, "request_retries_total"), 0);
    assert_eq!(counter(&hub, "request_exhausted_total"), 0);
    assert_eq!(counter(&hub, "tm_crashes_injected_total"), 0);
}
