//! Control-loop suite: the closed autoscaling/admission loop under
//! seeded, deterministic simulated load.
//!
//! Every test drives the real stack — Management Service, reconciler,
//! Parsl executor, admission controller — but feeds it *virtual*
//! telemetry: seeded Poisson arrivals ([`dlhub_sim::workload`]) are
//! binned onto a one-second tick grid, sampled into the telemetry
//! store at virtual timestamps, and reconciled via
//! [`ManagementService::reconcile_at`] on the same virtual clock. The
//! decision path never reads a wall clock, so a seed fully determines
//! the decision log:
//!
//! * decision logs replay byte-identical per seed;
//! * steady load never flaps (consecutive resizes are at least one
//!   cooldown apart, at most one change per cooldown window);
//! * idle pools park to the warm-pool floor (or to zero), and the
//!   first returning request pays the cold start *inside* its
//!   deadline;
//! * overload sheds early with a typed [`DlhubError::Overloaded`]
//!   carrying `retry_after_ms`, and under hostile-tenant bursts the
//!   weighted fair shares hold while the p99 of *accepted* requests
//!   stays within the SLO.
//!
//! The default seed matrix is `[7, 1848, 3141]`; `CONTROL_SEED=<seed>`
//! narrows it to one seed, mirroring the chaos suite's `CHAOS_SEED`.
//!
//! [`ManagementService::reconcile_at`]: dlhub_core::serving::ManagementService::reconcile_at

use dlhub_auth::IdentityId;
use dlhub_core::admission::{AdmissionConfig, AdmissionController, AdmissionPermit};
use dlhub_core::autoscale::ControlPolicy;
use dlhub_core::hub::TestHub;
use dlhub_core::servable::{servable_fn, ModelType};
use dlhub_core::serving::ServingConfig;
use dlhub_core::value::Value;
use dlhub_core::DlhubError;
use dlhub_sim::time::SimTime;
use dlhub_sim::workload::PoissonArrivals;
use std::time::{Duration, Instant};

const SEC: u64 = 1_000_000_000;

fn seeds() -> Vec<u64> {
    match std::env::var("CONTROL_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
    {
        Some(seed) => vec![seed],
        None => vec![7, 1848, 3141],
    }
}

fn counter(hub: &TestHub, name: &str) -> u64 {
    hub.service
        .metrics_snapshot()
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

fn cold_starts(hub: &TestHub) -> u64 {
    hub.service
        .metrics_snapshot()
        .histograms
        .iter()
        .find(|(n, _)| n == "cold_start_ns")
        .map(|(_, h)| h.count)
        .unwrap_or(0)
}

/// A hub wired for virtual-clock control: autoscaling configured (no
/// background thread — the tests drive `reconcile_at` themselves),
/// manual telemetry, and one published echo servable with a scripted
/// 100 ms inference profile behind `replicas` warm replicas.
fn control_hub(policy: ControlPolicy, replicas: usize) -> TestHub {
    let hub = TestHub::builder()
        .without_eval_servables()
        .config(ServingConfig {
            autoscale: Some(policy),
            ..ServingConfig::default()
        })
        .build();
    hub.publish_simple(
        "m",
        ModelType::PythonFunction,
        servable_fn(|v| Ok(v.clone())),
    );
    for _ in 0..10 {
        hub.service.profiles().record(
            "dlhub/m",
            Duration::from_millis(100),
            Duration::from_millis(103),
            1,
        );
    }
    hub.parsl.scale("dlhub/m", replicas);
    hub.service
        .obs()
        .enable_telemetry_manual(Duration::from_secs(1));
    hub
}

/// Walk virtual seconds `[from_s, to_s)`: bin the arrivals of each
/// tick into the requests counter, take a telemetry sample at the
/// tick's closing timestamp, then reconcile at that same instant.
fn drive(hub: &TestHub, arrivals: &mut PoissonArrivals, from_s: u64, to_s: u64) {
    for s in from_s..to_s {
        let t = (s + 1) * SEC;
        let n = arrivals.count_until(SimTime(t));
        hub.service.obs().metrics.series("dlhub/m").requests.add(n);
        hub.service.obs().telemetry.sample_now(t);
        hub.service.reconcile_at(t);
    }
}

fn scenario_policy() -> ControlPolicy {
    ControlPolicy {
        cooldown: Duration::from_secs(30),
        idle_after: Duration::from_secs(20),
        warm_pool: 0,
        signal_window: Duration::from_secs(10),
        ..ControlPolicy::default()
    }
}

/// The reference scenario: ramp up, surge, drain, go idle. Returns the
/// canonical decision log plus the applied-decision counter.
fn run_scenario(seed: u64) -> (String, u64) {
    let hub = control_hub(scenario_policy(), 1);
    let mut arrivals = PoissonArrivals::new(20.0, seed);
    drive(&hub, &mut arrivals, 0, 60);
    arrivals.set_rate(60.0);
    drive(&hub, &mut arrivals, 60, 120);
    arrivals.set_rate(2.0);
    drive(&hub, &mut arrivals, 120, 180);
    arrivals.set_rate(0.0);
    drive(&hub, &mut arrivals, 180, 240);
    let log = hub.service.reconciler().expect("autoscaler attached");
    (log.log_text(), counter(&hub, "autoscale_decisions_total"))
}

#[test]
fn decision_logs_replay_byte_identical_per_seed() {
    let mut logs = Vec::new();
    for seed in seeds() {
        let (first, first_count) = run_scenario(seed);
        let (second, second_count) = run_scenario(seed);
        assert_eq!(first, second, "seed {seed}: decision logs diverged");
        assert_eq!(first_count, second_count, "seed {seed}");
        assert_eq!(
            first.lines().count() as u64,
            first_count,
            "seed {seed}: counter disagrees with the log"
        );
        // The scenario must exercise the whole decision vocabulary.
        for reason in ["scale_up", "scale_down", "idle_park"] {
            assert!(
                first.contains(reason),
                "seed {seed}: no {reason} in:\n{first}"
            );
        }
        logs.push(first);
    }
    if logs.len() > 1 {
        // Different seeds draw different Poisson ticks; the logs must
        // not all collapse onto one schedule.
        assert!(
            logs.windows(2).any(|w| w[0] != w[1]),
            "all seeds produced identical decision logs"
        );
    }
}

#[test]
fn steady_load_never_flaps() {
    for seed in seeds() {
        let policy = scenario_policy();
        let cooldown_ns = policy.cooldown.as_nanos() as u64;
        let hub = control_hub(policy, 1);
        // 20 req/s × 100 ms on the scaled pool sits mid-band: after
        // the initial scale-up the loop must hold for five minutes.
        let mut arrivals = PoissonArrivals::new(20.0, seed);
        drive(&hub, &mut arrivals, 0, 300);
        let decisions = hub.service.reconciler().unwrap().decisions();
        assert!(!decisions.is_empty(), "seed {seed}: never scaled up");
        assert!(
            decisions.len() <= 2,
            "seed {seed}: {} changes under steady load:\n{}",
            decisions.len(),
            hub.service.reconciler().unwrap().log_text()
        );
        // No flapping: consecutive resizes at least one cooldown
        // apart, so no cooldown-aligned window sees two changes.
        for pair in decisions.windows(2) {
            assert!(
                pair[1].at_ns - pair[0].at_ns >= cooldown_ns,
                "seed {seed}: resizes {} and {} inside one cooldown",
                pair[0],
                pair[1]
            );
        }
        let replicas = hub.parsl.replicas("dlhub/m");
        assert!((3..=5).contains(&replicas), "seed {seed}: {replicas}");
    }
}

#[test]
fn idle_pools_scale_to_zero_and_cold_start_within_deadline() {
    let policy = ControlPolicy {
        idle_after: Duration::from_secs(5),
        warm_pool: 0,
        signal_window: Duration::from_secs(3),
        ..ControlPolicy::default()
    };
    let hub = control_hub(policy, 2);
    let baseline = cold_starts(&hub);
    let mut quiet = PoissonArrivals::new(0.0, 7);
    drive(&hub, &mut quiet, 0, 12);
    assert_eq!(hub.parsl.replicas("dlhub/m"), 0, "pool never parked");
    assert!(hub.cluster.running_pods("parsl-dlhub-m").is_empty());
    let log = hub.service.reconciler().unwrap().log_text();
    assert!(log.contains("idle_park"), "{log}");
    // The first returning request pays the cold start — and must
    // still answer well inside the request deadline.
    let started = Instant::now();
    let out = hub
        .service
        .run(&hub.token, "dlhub/m", Value::Str("back".into()))
        .expect("cold start must serve");
    assert_eq!(out.value, Value::Str("back".into()));
    assert!(
        started.elapsed() < ServingConfig::default().request_deadline,
        "cold start blew the deadline: {:?}",
        started.elapsed()
    );
    assert_eq!(
        cold_starts(&hub),
        baseline + 1,
        "cold start was not recorded"
    );
    assert!(hub.parsl.replicas("dlhub/m") > 0);
}

#[test]
fn warm_pool_floor_absorbs_the_return_without_a_cold_start() {
    let policy = ControlPolicy {
        idle_after: Duration::from_secs(5),
        warm_pool: 1,
        signal_window: Duration::from_secs(3),
        ..ControlPolicy::default()
    };
    let hub = control_hub(policy, 3);
    let baseline = cold_starts(&hub);
    let mut quiet = PoissonArrivals::new(0.0, 7);
    drive(&hub, &mut quiet, 0, 12);
    // Parked to the floor, not to zero: one replica stays warm.
    assert_eq!(hub.parsl.replicas("dlhub/m"), 1, "warm pool ignored");
    let out = hub
        .service
        .run(&hub.token, "dlhub/m", Value::Str("back".into()))
        .expect("warm replica must serve");
    assert_eq!(out.value, Value::Str("back".into()));
    assert_eq!(
        cold_starts(&hub),
        baseline,
        "warm-pool return should not pay a cold start"
    );
}

#[test]
fn overload_sheds_typed_overloaded_with_retry_after() {
    // max_inflight 0 is a permanently saturated front door: every
    // arrival is shed at the hard cap with the typed back-off.
    let hub = TestHub::builder()
        .without_eval_servables()
        .config(ServingConfig {
            admission: Some(AdmissionConfig {
                max_inflight: 0,
                retry_after: Duration::from_millis(40),
                ..AdmissionConfig::default()
            }),
            ..ServingConfig::default()
        })
        .build();
    hub.publish_simple(
        "m",
        ModelType::PythonFunction,
        servable_fn(|v| Ok(v.clone())),
    );
    let err = hub
        .service
        .run(&hub.token, "dlhub/m", Value::Null)
        .unwrap_err();
    assert_eq!(err, DlhubError::Overloaded { retry_after_ms: 40 });
    assert_eq!(counter(&hub, "requests_shed_total"), 1);
    // The async intake sheds at the same door.
    match hub.service.run_async(&hub.token, "dlhub/m", Value::Null) {
        Err(DlhubError::Overloaded { retry_after_ms: 40 }) => {}
        Err(other) => panic!("async shed was mistyped: {other:?}"),
        Ok(_) => panic!("async intake was admitted past a full door"),
    }
    assert_eq!(counter(&hub, "requests_shed_total"), 2);
}

/// Outcome of one seeded admission/queueing sim run.
#[derive(Debug, PartialEq)]
struct FairnessOutcome {
    accepted: [u64; 3],
    shed: [u64; 3],
    p99_ms: f64,
}

/// A deterministic virtual-clock overload: three tenants (weights 2,
/// 1 and 0) offer 60 + 30 + 300 req/s against 2 replicas of 20 ms —
/// roughly four times capacity. Admission runs the real
/// [`AdmissionController`]; accepted requests queue FIFO onto the
/// earliest-free replica, permits release at virtual completion time.
fn fairness_sim(seed: u64) -> FairnessOutcome {
    const STEP_NS: u64 = 1_000_000; // 1 ms
    const STEPS: u64 = 10_000; // 10 virtual seconds
    const SERVICE_NS: u64 = 20_000_000; // 20 ms
    const REPLICAS: usize = 2;

    let mut config = AdmissionConfig {
        max_inflight: 8,
        fair_share_at: 0.25,
        retry_after: Duration::from_millis(25),
        ..AdmissionConfig::default()
    };
    config.weights.insert(IdentityId(1), 2);
    config.weights.insert(IdentityId(2), 1);
    config.weights.insert(IdentityId(3), 0); // hostile: scavenger only
    let ctl = AdmissionController::new(config);

    let mut tenants = [
        (IdentityId(1), PoissonArrivals::new(60.0, seed)),
        (
            IdentityId(2),
            PoissonArrivals::new(30.0, seed ^ 0x9e37_79b9_7f4a_7c15),
        ),
        (
            IdentityId(3),
            PoissonArrivals::new(300.0, seed.rotate_left(17) | 1),
        ),
    ];
    let mut free_at = [0u64; REPLICAS];
    let mut holding: Vec<(u64, AdmissionPermit)> = Vec::new();
    let mut accepted = [0u64; 3];
    let mut shed = [0u64; 3];
    let mut latencies_ns: Vec<u64> = Vec::new();

    for step in 0..STEPS {
        let now = step * STEP_NS;
        // Completed requests release their admission slots.
        holding.retain(|(finish, _)| *finish > now);
        for (slot, (tenant, arrivals)) in tenants.iter_mut().enumerate() {
            let n = arrivals.count_until(SimTime(now + STEP_NS));
            for _ in 0..n {
                match ctl.admit(*tenant, false, now) {
                    Ok(permit) => {
                        let idx = (0..REPLICAS)
                            .min_by_key(|i| free_at[*i])
                            .expect("replicas > 0");
                        let start = free_at[idx].max(now);
                        let finish = start + SERVICE_NS;
                        free_at[idx] = finish;
                        latencies_ns.push(finish - now);
                        holding.push((finish, permit));
                        accepted[slot] += 1;
                    }
                    Err(DlhubError::Overloaded { retry_after_ms }) => {
                        assert_eq!(retry_after_ms, 25, "wrong back-off");
                        shed[slot] += 1;
                    }
                    Err(other) => panic!("untyped shed: {other:?}"),
                }
            }
        }
    }
    latencies_ns.sort_unstable();
    let p99_ms = latencies_ns[(latencies_ns.len() - 1) * 99 / 100] as f64 / 1e6;
    FairnessOutcome {
        accepted,
        shed,
        p99_ms,
    }
}

#[test]
fn hostile_bursts_cannot_starve_tenants_and_accepted_p99_holds() {
    for seed in seeds() {
        let outcome = fairness_sim(seed);
        // Byte-identical replay: the outcome is a pure seed function.
        assert_eq!(outcome, fairness_sim(seed), "seed {seed}: diverged");
        let [a, b, hostile] = outcome.accepted;
        // Nobody starves: both weighted tenants keep flowing even
        // while the zero-weight tenant offers 10× their load.
        assert!(a >= 100, "seed {seed}: tenant A starved: {outcome:?}");
        assert!(b >= 50, "seed {seed}: tenant B starved: {outcome:?}");
        // Weight 2 outranks weight 1 under contention.
        assert!(a > b, "seed {seed}: weights inverted: {outcome:?}");
        // The hostile tenant scavenges at most idle capacity — with
        // 10× the offered load it must not out-admit the weighted
        // tenants, and the door sheds the bulk of its burst.
        assert!(hostile < b, "seed {seed}: hostile won: {outcome:?}");
        assert!(
            outcome.shed[2] > hostile,
            "seed {seed}: hostile mostly admitted: {outcome:?}"
        );
        // Shedding early is what keeps the *accepted* requests fast:
        // bounded inflight (8) over 2×20 ms replicas caps queue wait
        // at ~80 ms, so p99 must hold a 150 ms SLO with margin.
        assert!(
            outcome.p99_ms <= 150.0,
            "seed {seed}: accepted p99 {}ms blew the SLO",
            outcome.p99_ms
        );
    }
}
