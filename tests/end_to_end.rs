//! Cross-crate integration tests: the full DLHub stack (auth ->
//! repository -> broker -> task manager -> executor -> servable) in
//! one process, exercised the way the paper's deployments use it.

use dlhub_core::hub::TestHub;
use dlhub_core::pipeline::Pipeline;
use dlhub_core::servable::{servable_fn, ModelType};
use dlhub_core::value::Value;
use dlhub_core::DlhubError;
use std::sync::Arc;
use std::time::Duration;

fn cifar_image(variant: u64) -> Value {
    Value::from_tensor(&dlhub_core::tensor::models::synthetic_image(
        &dlhub_core::tensor::models::CIFAR10_INPUT,
        variant,
    ))
}

#[test]
fn all_six_evaluation_servables_serve_correctly() {
    let hub = TestHub::builder().build();
    // noop
    let r = hub
        .service
        .run(&hub.token, "dlhub/noop", Value::Null)
        .unwrap();
    assert_eq!(r.value, Value::Str("hello world".into()));
    // cifar10
    let r = hub
        .service
        .run(&hub.token, "dlhub/cifar10", cifar_image(0))
        .unwrap();
    assert_eq!(r.value.as_list().unwrap().len(), 1);
    // inception
    let img = Value::from_tensor(&dlhub_core::tensor::models::synthetic_image(
        &dlhub_core::tensor::models::INCEPTION_INPUT,
        0,
    ));
    let r = hub.service.run(&hub.token, "dlhub/inception", img).unwrap();
    assert_eq!(r.value.as_list().unwrap().len(), 5);
    // matminer chain
    let parsed = hub
        .service
        .run(
            &hub.token,
            "dlhub/matminer-util",
            Value::Str("Fe2O3".into()),
        )
        .unwrap();
    let feats = hub
        .service
        .run(&hub.token, "dlhub/matminer-featurize", parsed.value)
        .unwrap();
    let pred = hub
        .service
        .run(&hub.token, "dlhub/matminer-model", feats.value)
        .unwrap();
    assert!(matches!(pred.value, Value::Float(v) if v.is_finite()));
    // Timing nesting holds for every request the stack serves.
    assert!(pred.timings.request >= pred.timings.invocation);
    assert!(pred.timings.invocation >= pred.timings.inference);
}

#[test]
fn concurrent_clients_all_get_correct_answers() {
    let hub = TestHub::builder().replicas(4).consumers(4).build();
    let service = Arc::clone(&hub.service);
    let token = hub.token.clone();
    let handles: Vec<_> = (0..8)
        .map(|worker| {
            let service = Arc::clone(&service);
            let token = token.clone();
            std::thread::spawn(move || {
                for i in 0..10 {
                    let formula = format!("Si{}O{}", worker + 1, i + 1);
                    let r = service
                        .run(&token, "dlhub/matminer-util", Value::Str(formula.clone()))
                        .unwrap();
                    match r.value {
                        Value::Json(doc) => assert_eq!(doc["formula"], formula.as_str()),
                        other => panic!("unexpected {other}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn restricted_model_lifecycle_across_users() {
    let hub = TestHub::builder().without_eval_servables().build();
    let stranger = hub.user_token("stranger");
    // Publish restricted, invisible to the stranger.
    let mut metadata =
        dlhub_core::ServableMetadata::new("secret", &hub.owner, ModelType::PythonFunction);
    metadata.description = "pre-release".into();
    hub.service
        .publish(
            &hub.token,
            metadata,
            servable_fn(|_| Ok(Value::Int(42))),
            Default::default(),
            dlhub_core::repository::PublishVisibility::Restricted {
                users: vec![],
                groups: vec![],
            },
        )
        .unwrap();
    assert!(matches!(
        hub.service.run(&stranger, "dlhub/secret", Value::Null),
        Err(DlhubError::NotFound(_))
    ));
    // Share, then invoke.
    hub.repo
        .share_with(&hub.token, "dlhub/secret", "stranger@dlhub.org")
        .unwrap();
    let r = hub
        .service
        .run(&stranger, "dlhub/secret", Value::Null)
        .unwrap();
    assert_eq!(r.value, Value::Int(42));
}

#[test]
fn pipeline_and_memoization_compose() {
    let hub = TestHub::builder().memo(true).build();
    hub.service
        .register_pipeline(
            &hub.token,
            Pipeline::new(
                "enthalpy",
                vec![
                    "dlhub/matminer-util".into(),
                    "dlhub/matminer-featurize".into(),
                    "dlhub/matminer-model".into(),
                ],
            ),
        )
        .unwrap();
    let (v1, steps1) = hub
        .service
        .run_pipeline(&hub.token, "enthalpy", Value::Str("NaCl".into()))
        .unwrap();
    let (v2, steps2) = hub
        .service
        .run_pipeline(&hub.token, "enthalpy", Value::Str("NaCl".into()))
        .unwrap();
    assert_eq!(v1, v2);
    // Second run hits the memo cache at every step.
    assert!(steps1.iter().all(|s| !s.timings.cache_hit));
    assert!(steps2.iter().all(|s| s.timings.cache_hit));
}

#[test]
fn multiple_task_managers_share_the_queue() {
    // "one or more Task Managers" (§IV): two TMs pull from the same
    // broker topic; both serve, and all answers stay correct.
    let hub = TestHub::builder()
        .task_managers(2)
        .consumers(2)
        .replicas(2)
        .memo(false)
        .build();
    assert_eq!(hub.service.task_managers().len(), 2);
    let service = Arc::clone(&hub.service);
    let token = hub.token.clone();
    let handles: Vec<_> = (0..6)
        .map(|worker| {
            let service = Arc::clone(&service);
            let token = token.clone();
            std::thread::spawn(move || {
                for i in 0..8 {
                    let formula = format!("Al{}O{}", worker + 1, i + 1);
                    let r = service
                        .run(&token, "dlhub/matminer-util", Value::Str(formula.clone()))
                        .unwrap();
                    match r.value {
                        Value::Json(doc) => assert_eq!(doc["formula"], formula.as_str()),
                        other => panic!("unexpected {other}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // With a 10ms servable and parallel clients, two TMs must overlap:
    // 24 requests of 10ms across 2 TMs × 2 consumers finish well under
    // the serial 240ms.
    hub.publish_simple(
        "slow",
        ModelType::PythonFunction,
        servable_fn(|v| {
            std::thread::sleep(Duration::from_millis(10));
            Ok(v.clone())
        }),
    );
    let start = std::time::Instant::now();
    let handles: Vec<_> = (0..24)
        .map(|i| {
            let service = Arc::clone(&hub.service);
            let token = hub.token.clone();
            std::thread::spawn(move || service.run(&token, "dlhub/slow", Value::Int(i)).unwrap())
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_millis(200),
        "no parallelism across TMs: {elapsed:?}"
    );
}

#[test]
fn no_task_manager_means_timeout_not_hang() {
    // Assemble a service with no Task Manager attached: requests must
    // fail with Timeout after the configured deadline.
    use dlhub_auth::{AuthService, Scope};
    use dlhub_core::repository::{Repository, PUBLISH_SCOPE, SERVE_SCOPE};
    use dlhub_core::serving::{ManagementService, ServingConfig};
    use dlhub_queue::{Broker, BrokerConfig};

    let auth = AuthService::new();
    auth.register_provider("p");
    let repo = Arc::new(Repository::new(auth.clone()));
    let user = auth.register_identity("p", "u").unwrap();
    let token = auth
        .issue_token(
            user,
            &[
                Scope::new("dlhub", PUBLISH_SCOPE),
                Scope::new("dlhub", SERVE_SCOPE),
            ],
        )
        .unwrap();
    repo.publish(
        &token,
        dlhub_core::ServableMetadata::new("m", "u@p", ModelType::PythonFunction),
        servable_fn(|_| Ok(Value::Null)),
        Default::default(),
        dlhub_core::repository::PublishVisibility::Public,
    )
    .unwrap();
    let broker = Broker::new(BrokerConfig::default());
    let service = ManagementService::new(
        repo,
        &broker,
        ServingConfig {
            request_timeout: Duration::from_millis(100),
            ..ServingConfig::default()
        },
    );
    let started = std::time::Instant::now();
    let err = service.run(&token, "u/m", Value::Null).unwrap_err();
    // With no Task Manager attached every attempt times out, so the
    // default retry policy (2 retries) reports exhaustion.
    match err {
        DlhubError::Exhausted {
            attempts,
            ref last_error,
            ..
        } => {
            assert_eq!(attempts, 3);
            assert!(last_error.contains("timed out"), "{last_error}");
        }
        other => panic!("unexpected {other:?}"),
    }
    // 3 x 100ms attempts plus backoff stays well under the bound.
    assert!(started.elapsed() < Duration::from_secs(2));
}

#[test]
fn republished_model_serves_new_behaviour_immediately() {
    let hub = TestHub::builder()
        .without_eval_servables()
        .memo(true)
        .build();
    hub.publish_simple(
        "evolving",
        ModelType::PythonFunction,
        servable_fn(|_| Ok(Value::Int(1))),
    );
    let r1 = hub
        .service
        .run(&hub.token, "dlhub/evolving", Value::Null)
        .unwrap();
    hub.publish_simple(
        "evolving",
        ModelType::PythonFunction,
        servable_fn(|_| Ok(Value::Int(2))),
    );
    let r2 = hub
        .service
        .run(&hub.token, "dlhub/evolving", Value::Null)
        .unwrap();
    assert_eq!(r1.value, Value::Int(1));
    assert_eq!(r2.value, Value::Int(2));
    // Version and DOI moved.
    let (_, version, _) = hub.service.describe(None, "dlhub/evolving").unwrap();
    assert_eq!(version, 2);
}

#[test]
fn task_survives_a_crashing_task_manager() {
    // The queue "provides a reliable messaging model that ensures
    // tasks are received and executed" (§IV-A). A TM that takes a task
    // and dies before replying must not lose it: the lease expires and
    // the task is redelivered to a healthy TM.
    use dlhub_auth::{AuthService, Scope};
    use dlhub_core::repository::{Repository, PUBLISH_SCOPE, SERVE_SCOPE};
    use dlhub_core::serving::{ManagementService, ServingConfig};
    use dlhub_core::task_manager::TaskManager;
    use dlhub_queue::{Broker, BrokerConfig, TopicConfig};

    let auth = AuthService::new();
    auth.register_provider("p");
    let repo = Arc::new(Repository::new(auth.clone()));
    let user = auth.register_identity("p", "u").unwrap();
    let token = auth
        .issue_token(
            user,
            &[
                Scope::new("dlhub", PUBLISH_SCOPE),
                Scope::new("dlhub", SERVE_SCOPE),
            ],
        )
        .unwrap();
    repo.publish(
        &token,
        dlhub_core::ServableMetadata::new("m", "u@p", ModelType::PythonFunction),
        servable_fn(|_| Ok(Value::Str("survived".into()))),
        Default::default(),
        dlhub_core::repository::PublishVisibility::Public,
    )
    .unwrap();

    // Short leases so the crash is detected quickly.
    let broker = Broker::new(BrokerConfig {
        topic_defaults: TopicConfig {
            lease: Duration::from_millis(100),
            max_attempts: 5,
            ..TopicConfig::default()
        },
        ..BrokerConfig::default()
    });
    let config = ServingConfig {
        request_timeout: Duration::from_secs(10),
        ..ServingConfig::default()
    };

    // A "crashing TM": grabs the first task and never replies (the
    // delivery is forgotten, simulating a process kill mid-execution).
    broker.ensure_topic(&config.task_topic);
    let crash_broker = broker.clone();
    let crash_topic = config.task_topic.clone();
    let crasher = std::thread::spawn(move || {
        let delivery = crash_broker
            .recv_timeout(&crash_topic, Duration::from_secs(5))
            .expect("crasher should get the task first");
        std::mem::forget(delivery); // crash: no ack, no reply
    });

    let service = ManagementService::new(Arc::clone(&repo), &broker, config.clone());
    // Give the crasher a head start on the queue before a healthy TM
    // joins.
    let issued = std::thread::spawn({
        let service = Arc::clone(&service);
        let token = token.clone();
        move || service.run(&token, "u/m", Value::Null)
    });
    crasher.join().unwrap();
    // Now start a healthy TM; the leased-but-dead task must be
    // redelivered to it.
    let _tm = TaskManager::start(
        "healthy-tm",
        &broker,
        &config.task_topic,
        Arc::clone(&repo),
        vec![Arc::new(dlhub_core::executor::ParslExecutor::new(
            dlhub_container::Cluster::petrelkube(),
            1,
        ))],
        1,
    );
    let result = issued.join().unwrap().expect("task must survive the crash");
    assert_eq!(result.value, Value::Str("survived".into()));
}

#[test]
fn retrain_and_redeploy_lifecycle() {
    // §I: "seamless retraining and redeployment of models as new data
    // are available." Train on SageMaker, publish to DLHub, serve;
    // retrain on more data, republish — the version bumps, stale memo
    // entries are invalidated, and serving continues uninterrupted.
    use dlhub_baselines::SageMaker;
    use dlhub_core::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dataset(n: usize, seed: u64) -> Vec<(Tensor, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let label = rng.gen_range(0..2usize);
                let mut data = vec![0.0f32; 64];
                let row = if label == 0 {
                    rng.gen_range(0..3)
                } else {
                    rng.gen_range(5..8)
                };
                data[row * 8 + rng.gen_range(0..8)] = 1.0;
                (Tensor::new(vec![1, 8, 8], data).unwrap(), label)
            })
            .collect()
    }

    let hub = TestHub::builder()
        .without_eval_servables()
        .memo(true)
        .build();

    // v1: trained on a small set.
    let serve_v1 = {
        let sm = SageMaker::new(); // fresh container for the frozen net
        sm.create_cnn_training_job("quadrant", vec![1, 8, 8], 2, &dataset(80, 1), 6, 1)
            .unwrap();
        sm.create_endpoint("e", "quadrant", 1).unwrap();
        servable_fn(move |input| sm.invoke_endpoint("e", input).map_err(|e| e.to_string()))
    };
    let mut metadata = dlhub_core::ServableMetadata::new("quadrant", &hub.owner, ModelType::Keras);
    metadata.description = "quadrant classifier v1".into();
    let v1 = hub
        .service
        .publish(
            &hub.token,
            metadata.clone(),
            serve_v1,
            Default::default(),
            dlhub_core::repository::PublishVisibility::Public,
        )
        .unwrap();
    assert_eq!(v1.version, 1);
    let probe = Value::from_tensor(&dataset(1, 99)[0].0);
    let first = hub
        .service
        .run(&hub.token, "dlhub/quadrant", probe.clone())
        .unwrap();

    // v2: retrained on more data, redeployed under the same id.
    let serve_v2 = {
        let sm2 = SageMaker::new();
        sm2.create_cnn_training_job("quadrant", vec![1, 8, 8], 2, &dataset(300, 2), 8, 2)
            .unwrap();
        sm2.create_endpoint("e", "quadrant", 1).unwrap();
        servable_fn(move |input| sm2.invoke_endpoint("e", input).map_err(|e| e.to_string()))
    };
    metadata.description = "quadrant classifier v2 (retrained)".into();
    let v2 = hub
        .service
        .publish(
            &hub.token,
            metadata,
            serve_v2,
            Default::default(),
            dlhub_core::repository::PublishVisibility::Public,
        )
        .unwrap();
    assert_eq!(v2.version, 2);
    assert_ne!(v1.doi, v2.doi);

    // The same request now reaches the retrained model (no stale memo
    // answer), and predictions remain valid classifications.
    let second = hub
        .service
        .run(&hub.token, "dlhub/quadrant", probe)
        .unwrap();
    assert!(
        !second.timings.cache_hit,
        "stale memo entry served after redeploy"
    );
    for value in [&first.value, &second.value] {
        match value {
            Value::Json(doc) => {
                let class = doc["class"].as_u64().unwrap();
                assert!(class < 2);
            }
            other => panic!("unexpected {other}"),
        }
    }
    // Test-set accuracy of the deployed v2 through the full stack.
    let test = dataset(30, 7);
    let mut correct = 0;
    for (x, label) in &test {
        let out = hub
            .service
            .run(&hub.token, "dlhub/quadrant", Value::from_tensor(x))
            .unwrap();
        if let Value::Json(doc) = out.value {
            if doc["class"].as_u64() == Some(*label as u64) {
                correct += 1;
            }
        }
    }
    assert!(correct >= 26, "deployed accuracy {correct}/30");
}

#[test]
fn pipeline_run_yields_one_trace_with_correctly_parented_spans() {
    // Observability acceptance: a single pipeline run must produce a
    // single trace whose spans cover all three measurement tiers
    // (§V-A) — request (Management Service), invocation (Task
    // Manager), inference (servable) — with consistent parent links
    // and nested durations.
    let hub = TestHub::builder().memo(false).build();
    hub.service
        .register_pipeline(
            &hub.token,
            Pipeline::new(
                "enthalpy",
                vec![
                    "dlhub/matminer-util".into(),
                    "dlhub/matminer-featurize".into(),
                    "dlhub/matminer-model".into(),
                ],
            ),
        )
        .unwrap();
    let (_, steps, trace) = hub
        .service
        .run_pipeline_traced(&hub.token, "enthalpy", Value::Str("KBr".into()))
        .unwrap();
    assert_eq!(steps.len(), 3);

    let export = hub.service.trace_export(Some(trace));
    // One trace: every exported span carries the id we were handed.
    assert_eq!(export.trace_ids(), vec![trace]);

    // One pipeline root, unparented.
    let roots = export.named("pipeline");
    assert_eq!(roots.len(), 1);
    let root = roots[0];
    assert_eq!(root.parent, 0);

    // Three request spans, one per step, all children of the root.
    let requests = export.named("request");
    assert_eq!(requests.len(), 3);
    for request in &requests {
        assert_eq!(request.parent, root.span);
        // Each request owns exactly one invocation span (the Task
        // Manager tier), which in turn owns at least one inference
        // span (the servable tier).
        let invocations: Vec<_> = export
            .children_of(request.span)
            .into_iter()
            .filter(|s| s.name == "invocation")
            .collect();
        assert_eq!(invocations.len(), 1, "request {:?}", request.attrs);
        let invocation = invocations[0];
        let inferences: Vec<_> = export
            .children_of(invocation.span)
            .into_iter()
            .filter(|s| s.name == "inference")
            .collect();
        assert!(!inferences.is_empty(), "request {:?}", request.attrs);
        // The paper's nesting invariant holds span-for-span.
        for inference in &inferences {
            assert!(inference.duration() <= invocation.duration());
        }
        assert!(invocation.duration() <= request.duration());
    }
    // The three steps appear in pipeline order.
    let order: Vec<_> = requests.iter().filter_map(|r| r.attr("servable")).collect();
    assert_eq!(
        order,
        vec![
            "dlhub/matminer-util",
            "dlhub/matminer-featurize",
            "dlhub/matminer-model"
        ]
    );
}

#[test]
fn batch_and_sequential_agree() {
    let hub = TestHub::builder().build();
    let formulas: Vec<Value> = ["NaCl", "SiO2", "BaTiO3", "Fe2O3"]
        .iter()
        .map(|f| Value::Str(f.to_string()))
        .collect();
    let (batched, _) = hub
        .service
        .run_batch(&hub.token, "dlhub/matminer-util", formulas.clone())
        .unwrap();
    for (input, batched_out) in formulas.iter().zip(&batched) {
        let solo = hub
            .service
            .run_with_options(
                &hub.token,
                "dlhub/matminer-util",
                input.clone(),
                &dlhub_core::serving::RunOptions {
                    memoize: Some(false),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(&solo.value, batched_out);
    }
}
