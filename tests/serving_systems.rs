//! Integration tests across serving systems: the same models behind
//! DLHub, TensorFlow Serving, SageMaker and Clipper must agree on
//! outputs, and the Fig 8 architectural properties must hold.

use dlhub_baselines::protocol::Protocol;
use dlhub_baselines::{Clipper, SageMaker, TensorFlowModelServer};
use dlhub_container::Cluster;
use dlhub_core::hub::TestHub;
use dlhub_core::servable::builtins::ImageClassifier;
use dlhub_core::servable::ModelType;
use dlhub_core::value::Value;
use std::sync::Arc;

fn cifar_image(variant: u64) -> Value {
    Value::from_tensor(&dlhub_core::tensor::models::synthetic_image(
        &dlhub_core::tensor::models::CIFAR10_INPUT,
        variant,
    ))
}

#[test]
fn all_four_systems_agree_on_cifar10() {
    let seed = 7;
    let input = cifar_image(3);

    // DLHub.
    let hub = TestHub::builder().seed(seed).build();
    let dlhub_out = hub
        .service
        .run(&hub.token, "dlhub/cifar10", input.clone())
        .unwrap()
        .value;

    // TensorFlow Serving (gRPC and REST must agree with each other).
    let tfs = TensorFlowModelServer::new();
    tfs.load_model(
        "cifar10",
        1,
        ModelType::Keras,
        Arc::new(ImageClassifier::cifar10(seed)),
    )
    .unwrap();
    let tfs_grpc = tfs
        .predict_value(Protocol::Grpc, "cifar10", None, &input)
        .unwrap();
    let tfs_rest = tfs
        .predict_value(Protocol::Rest, "cifar10", None, &input)
        .unwrap();

    // SageMaker.
    let sm = SageMaker::new();
    sm.create_model("cifar10", Arc::new(ImageClassifier::cifar10(seed)))
        .unwrap();
    sm.create_endpoint("cifar10-prod", "cifar10", 1).unwrap();
    let sm_out = sm.invoke_endpoint("cifar10-prod", &input).unwrap();

    // Clipper.
    let clipper = Clipper::deploy(Cluster::petrelkube(), true).unwrap();
    clipper
        .deploy_model("cifar10", Arc::new(ImageClassifier::cifar10(seed)), 1)
        .unwrap();
    clipper.register_application("cifar", Value::Null);
    clipper.link_model("cifar", "cifar10").unwrap();
    let (clipper_out, _, _) = clipper.query("cifar", &input).unwrap();

    // Same model weights, same input => identical predictions
    // across every serving system and protocol.
    assert_eq!(tfs_grpc, tfs_rest);
    assert_eq!(dlhub_out, tfs_grpc);
    assert_eq!(dlhub_out, sm_out);
    assert_eq!(dlhub_out, clipper_out);
}

#[test]
fn dlhub_serves_functions_that_tfserving_rejects() {
    // Table II: DLHub serves "General" model types; TF Serving serves
    // only "TF Servables". The matminer parser is a plain function.
    let hub = TestHub::builder().build();
    let out = hub
        .service
        .run(&hub.token, "dlhub/matminer-util", Value::Str("NaCl".into()))
        .unwrap();
    assert!(matches!(out.value, Value::Json(_)));

    let tfs = TensorFlowModelServer::new();
    let err = tfs.load_model(
        "matminer-util",
        1,
        ModelType::PythonFunction,
        Arc::new(dlhub_core::servable::builtins::MatminerUtil),
    );
    assert!(err.is_err());
}

#[test]
fn cache_placement_differs_between_dlhub_and_clipper() {
    // Architectural check behind Fig 8's memoization result: DLHub's
    // hit is answered before the executor; Clipper's hit is answered
    // by the frontend pod on the cluster. We verify the *observable*
    // part: both cache, and both return the original answer.
    let input = cifar_image(5);

    let hub = TestHub::builder().memo(true).build();
    let cold = hub
        .service
        .run(&hub.token, "dlhub/cifar10", input.clone())
        .unwrap();
    let warm = hub
        .service
        .run(&hub.token, "dlhub/cifar10", input.clone())
        .unwrap();
    assert!(!cold.timings.cache_hit && warm.timings.cache_hit);
    assert_eq!(cold.value, warm.value);
    assert!(warm.timings.invocation < cold.timings.invocation);

    let clipper = Clipper::deploy(Cluster::petrelkube(), true).unwrap();
    clipper
        .deploy_model("cifar10", Arc::new(ImageClassifier::cifar10(7)), 1)
        .unwrap();
    clipper.register_application("cifar", Value::Null);
    clipper.link_model("cifar", "cifar10").unwrap();
    let (out1, hit1, _) = clipper.query("cifar", &input).unwrap();
    let (out2, hit2, _) = clipper.query("cifar", &input).unwrap();
    assert!(!hit1 && hit2);
    assert_eq!(out1, out2);
}

#[test]
fn tfserving_survives_concurrent_clients_and_hot_reload() {
    use dlhub_core::servable::servable_fn;
    let server = Arc::new(TensorFlowModelServer::new());
    server
        .load_model(
            "m",
            1,
            ModelType::TensorFlow,
            servable_fn(|_| Ok(Value::Int(1))),
        )
        .unwrap();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    // Clients hammer predictions while a new version hot-loads.
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut seen = std::collections::BTreeSet::new();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let out = server
                        .predict_value(Protocol::Grpc, "m", None, &Value::Null)
                        .unwrap();
                    if let Value::Int(v) = out {
                        seen.insert(v);
                    }
                }
                seen
            })
        })
        .collect();
    std::thread::sleep(std::time::Duration::from_millis(20));
    server
        .load_model(
            "m",
            2,
            ModelType::TensorFlow,
            servable_fn(|_| Ok(Value::Int(2))),
        )
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(20));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let mut all = std::collections::BTreeSet::new();
    for c in clients {
        all.extend(c.join().unwrap());
    }
    // Every answer came from a loaded version — v1 before the reload,
    // v2 after — and nothing else.
    assert!(all.contains(&2), "new version must serve after reload");
    assert!(all.iter().all(|v| *v == 1 || *v == 2), "answers: {all:?}");
    // Version pinning still reaches v1.
    assert_eq!(
        server
            .predict_value(Protocol::Grpc, "m", Some(1), &Value::Null)
            .unwrap(),
        Value::Int(1)
    );
}

#[test]
fn clipper_bandit_converges_under_noisy_feedback() {
    use dlhub_core::servable::servable_fn;
    let clipper = Clipper::deploy(Cluster::petrelkube(), true).unwrap();
    clipper
        .deploy_model("good", servable_fn(|v| Ok(v.clone())), 1)
        .unwrap();
    // Flaky model: fails on a third of the inputs.
    clipper
        .deploy_model(
            "flaky",
            servable_fn(|v| match v {
                Value::Int(i) if i % 3 == 0 => Err("flaked".into()),
                other => Ok(other.clone()),
            }),
            1,
        )
        .unwrap();
    clipper.register_application("app", Value::Null);
    clipper.link_model("app", "flaky").unwrap();
    clipper.link_model("app", "good").unwrap();
    let mut last_20 = Vec::new();
    for i in 0..60 {
        let (_, _, used) = clipper.query("app", &Value::Int(i)).unwrap();
        if i >= 40 {
            last_20.push(used);
        }
    }
    // After exploration, the selector settles on the reliable model.
    let good_share = last_20
        .iter()
        .filter(|u| u.as_deref() == Some("good"))
        .count();
    assert!(
        good_share >= 15,
        "selector failed to converge: {good_share}/20 on 'good'"
    );
}

#[test]
fn sagemaker_trains_models_dlhub_only_serves() {
    // Table II: SageMaker supports training; DLHub does not. Train a
    // forest on SageMaker, export it, and publish the endpoint's
    // behaviour into DLHub for serving.
    let sm = SageMaker::new();
    let data = dlhub_core::matsci::dataset::generate(200, 3);
    let training = dlhub_baselines::sagemaker::TrainingData {
        features: data.features(),
        targets: data.targets(),
    };
    sm.create_training_job("stability", &training, 3).unwrap();
    sm.create_endpoint("stability-prod", "stability", 1)
        .unwrap();

    let probe = {
        let composition = dlhub_core::matsci::parse_formula("NaCl").unwrap();
        let features = dlhub_core::matsci::featurize(&composition);
        Value::Tensor {
            shape: vec![features.len()],
            data: features.iter().map(|v| *v as f32).collect(),
        }
    };
    let sm_prediction = sm.invoke_endpoint("stability-prod", &probe).unwrap();
    assert!(matches!(sm_prediction, Value::Float(v) if v.is_finite()));

    // Exported container exists and is deployable metadata-wise.
    let image = sm.export_container("stability").unwrap();
    assert!(image.size() > 0);
}
