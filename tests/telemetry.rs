//! Telemetry integration: seeded sim replays must export
//! byte-identical time series, and a live deployment's collector must
//! feed the query API end to end.

use dlhub_core::hub::TestHub;
use dlhub_core::obs::Obs;
use dlhub_core::value::Value;
use dlhub_sim::serving::{replay_telemetry, ServableModel};
use dlhub_sim::testbed;
use dlhub_sim::time::SimTime;
use std::time::Duration;

fn cifar() -> ServableModel {
    ServableModel::new("cifar10", SimTime::from_millis(5.0), 12.0, 0.2)
}

/// Replay one seeded sim run through a fresh Obs handle's manual-mode
/// collector and export the store as a JSON string.
fn export_for_seed(seed: u64) -> String {
    let profile = testbed::dlhub();
    let samples = profile.run_sequential(&cifar(), 400, true, true, seed);
    let obs = Obs::new();
    obs.enable_telemetry_manual(Duration::from_millis(50));
    let passes = replay_telemetry(&obs, "dlhub/cifar10", &samples);
    assert!(passes > 0, "replay must take sampling passes");
    serde_json::to_string(&obs.telemetry.store().unwrap().to_json()).unwrap()
}

#[test]
fn seeded_sim_runs_export_byte_identical_series() {
    for seed in [3u64, 17, 20260809] {
        let first = export_for_seed(seed);
        let second = export_for_seed(seed);
        assert_eq!(first, second, "seed {seed} exports must be byte-identical");
        assert!(first.contains("servable.dlhub/cifar10.requests"), "{seed}");
    }
    // Different seeds draw different jitter: the series must differ.
    assert_ne!(export_for_seed(3), export_for_seed(17));
}

#[test]
fn replayed_series_answer_windowed_queries() {
    let profile = testbed::dlhub();
    let samples = profile.run_sequential(&cifar(), 300, true, true, 11);
    let obs = Obs::new();
    obs.enable_telemetry_manual(Duration::from_millis(50));
    replay_telemetry(&obs, "dlhub/cifar10", &samples);
    let store = obs.telemetry.store().unwrap();
    let signals = obs.telemetry.signals().unwrap();
    // The whole replay fits well inside a 60 s window.
    let window = Duration::from_secs(60);
    let arrival = signals.arrival_rate("dlhub/cifar10", window).unwrap();
    assert!(arrival > 0.0, "{arrival}");
    let lat = signals.request_latency("dlhub/cifar10", window).unwrap();
    // The closing pass captures every request; the first slot may act
    // as the delta baseline, so a handful of early samples can fall
    // out of the merged window.
    assert!(lat.count > 250, "{}", lat.count);
    let p50 = lat.quantile(0.5).unwrap();
    let p99 = lat.quantile(0.99).unwrap();
    assert!(p50 >= 1_000_000, "p50 {p50} should exceed 1ms of RTT");
    assert!(p99 >= p50);
    assert!(store.samples_taken() > 10);
}

#[test]
fn live_deployment_collector_feeds_control_signals() {
    let hub = TestHub::builder()
        .without_eval_servables()
        .config(dlhub_core::serving::ServingConfig {
            telemetry_interval: Duration::from_millis(10),
            ..Default::default()
        })
        .build();
    hub.publish_simple(
        "echo2",
        dlhub_core::servable::ModelType::PythonFunction,
        dlhub_core::servable::servable_fn(|v| Ok(v.clone())),
    );
    for i in 0..20 {
        hub.service
            .run(&hub.token, "dlhub/echo2", Value::Int(i as i64))
            .unwrap();
    }
    let store = hub.service.telemetry_store().expect("collector enabled");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while store.samples_taken() < 8 {
        assert!(std::time::Instant::now() < deadline, "collector never ran");
        std::thread::sleep(Duration::from_millis(10));
    }
    let signals = hub.service.control_signals().unwrap();
    // Stay on the fine tier (10 ms × 120 = 1.2 s coverage): a wider
    // window would quantize all passes into one coarse slot.
    let window = Duration::from_secs(1);
    let arrival = signals.arrival_rate("dlhub/echo2", window);
    assert!(arrival.is_some(), "arrival rate should have history");
    let lat = signals.request_latency("dlhub/echo2", window).unwrap();
    assert!(lat.count > 0);
    // The export schema carries the sampled series.
    let doc = store.to_json();
    assert!(doc["samples_taken"].as_u64().unwrap() >= 3);
    assert!(doc["series"]
        .as_array()
        .unwrap()
        .iter()
        .any(|s| s["name"] == "servable.dlhub/echo2.requests"));
}
