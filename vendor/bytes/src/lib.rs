//! Minimal API-compatible stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply cloneable, immutable, contiguous byte
//! buffer backed by `Arc<[u8]>`. Only the surface this workspace uses
//! is implemented.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from([]),
        }
    }

    /// Wrap a static byte slice (copies, unlike the real crate, but
    /// semantics are identical for immutable use).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// Borrow the underlying slice.
    #[allow(clippy::should_implement_trait)] // inherent method mirroring the real `bytes` API
    pub fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes {
            data: s.into_bytes().into(),
        }
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.data[..] == **other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.data[..] == other[..]
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.data[..] == *other.as_bytes()
    }
}

impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        self.data[..] == *other.as_bytes()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data.cmp(&other.data)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from_static(b"hello");
        let b = Bytes::copy_from_slice(b"hello");
        let c = Bytes::from(b"hello".to_vec());
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a, *b"hello");
        assert_eq!(&a[..], b"hello");
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clone_is_shallow() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
    }
}
