//! Minimal offline stand-in for `criterion`.
//!
//! Provides `Criterion`, benchmark groups, `Bencher::{iter,
//! iter_batched}`, and the `criterion_group!`/`criterion_main!`
//! macros with real wall-clock measurement: warmup to estimate
//! per-iteration cost, then timed samples for the configured
//! measurement window, reporting min/median/mean nanoseconds per
//! iteration. No plotting, no statistics beyond the summary line.
//!
//! Set `CRITERION_MEASUREMENT_MS` to override every group's
//! measurement window (useful for smoke-testing the bench suite).

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so callers can use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup cost. The stub times each
/// routine call individually, so the variants behave identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine input; large timing batches in real criterion.
    SmallInput,
    /// Large routine input.
    LargeInput,
    /// Fresh setup every iteration.
    PerIteration,
}

#[derive(Clone, Debug)]
struct Summary {
    iters: u64,
    min_ns: f64,
    mean_ns: f64,
    median_ns: f64,
}

/// Runs routines and records timing samples.
pub struct Bencher {
    measurement_time: Duration,
    summary: Option<Summary>,
}

impl Bencher {
    fn new(measurement_time: Duration) -> Self {
        Bencher {
            measurement_time,
            summary: None,
        }
    }

    /// Time `routine` repeatedly for the measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: estimate per-iteration cost so samples can batch
        // enough iterations to dwarf timer overhead.
        let warmup_budget = (self.measurement_time / 10).max(Duration::from_millis(20));
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < warmup_budget {
            std_black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_nanos() as f64 / warmup_iters.max(1) as f64;
        // Aim for ~100 samples of >=10us each within the window.
        let sample_ns = (self.measurement_time.as_nanos() as f64 / 100.0).max(10_000.0);
        let iters_per_sample = ((sample_ns / per_iter.max(0.5)) as u64).max(1);

        let mut samples: Vec<f64> = Vec::new();
        let mut total_iters = 0u64;
        let run_start = Instant::now();
        while run_start.elapsed() < self.measurement_time || samples.len() < 10 {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                std_black_box(routine());
            }
            let dt = t0.elapsed().as_nanos() as f64;
            samples.push(dt / iters_per_sample as f64);
            total_iters += iters_per_sample;
            if samples.len() >= 5000 {
                break;
            }
        }
        self.summary = Some(summarize(&mut samples, total_iters));
    }

    /// Time `routine` with per-call inputs built by `setup`; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warmup_budget = (self.measurement_time / 10).max(Duration::from_millis(20));
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < warmup_budget {
            let input = setup();
            std_black_box(routine(input));
            warmup_iters += 1;
        }
        let _ = warmup_iters;

        let mut samples: Vec<f64> = Vec::new();
        let mut total_iters = 0u64;
        let run_start = Instant::now();
        while run_start.elapsed() < self.measurement_time || samples.len() < 10 {
            let input = setup();
            let t0 = Instant::now();
            let out = routine(input);
            let dt = t0.elapsed().as_nanos() as f64;
            drop(std_black_box(out));
            samples.push(dt);
            total_iters += 1;
            if samples.len() >= 5000 {
                break;
            }
        }
        self.summary = Some(summarize(&mut samples, total_iters));
    }
}

fn summarize(samples: &mut [f64], iters: u64) -> Summary {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min_ns = samples.first().copied().unwrap_or(0.0);
    let median_ns = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
    let mean_ns = samples.iter().sum::<f64>() / samples.len().max(1) as f64;
    Summary {
        iters,
        min_ns,
        mean_ns,
        median_ns,
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn report(id: &str, s: &Summary) {
    println!(
        "{id:<48} time: [{} {} {}]  ({} iters)",
        format_ns(s.min_ns),
        format_ns(s.median_ns),
        format_ns(s.mean_ns),
        s.iters
    );
}

fn env_measurement_override() -> Option<Duration> {
    std::env::var("CRITERION_MEASUREMENT_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
}

/// A named set of related benchmarks sharing a measurement window.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark measurement window.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = env_measurement_override().unwrap_or(time);
        self
    }

    /// Accepted for API compatibility; the stub sizes samples itself.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.measurement_time);
        f(&mut bencher);
        if let Some(summary) = &bencher.summary {
            report(&format!("{}/{}", self.name, id.as_ref()), summary);
        }
        self
    }

    /// End the group (no-op beyond dropping).
    pub fn finish(self) {}
}

/// Benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    default_measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_measurement: env_measurement_override().unwrap_or(Duration::from_secs(1)),
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let measurement_time = self.default_measurement;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            measurement_time,
            sample_size: 100,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.default_measurement);
        f(&mut bencher);
        if let Some(summary) = &bencher.summary {
            report(id.as_ref(), summary);
        }
        self
    }
}

/// Bundle benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_produces_summary() {
        std::env::set_var("CRITERION_MEASUREMENT_MS", "30");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.measurement_time(Duration::from_secs(1));
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        std::env::set_var("CRITERION_MEASUREMENT_MS", "30");
        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8, 2, 3],
                |v| v.into_iter().map(|x| x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
    }
}
