//! Minimal API-compatible stand-in for `crossbeam`.
//!
//! Only the [`channel`] module is provided: multi-producer,
//! multi-consumer FIFO channels (bounded and unbounded) with
//! disconnect-on-last-drop semantics matching the real crate.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        // Signalled when a message arrives or all senders disconnect.
        ready: Condvar,
        // Signalled when space frees up or all receivers disconnect.
        space: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        capacity: Option<usize>,
    }

    impl<T> Shared<T> {
        fn new(capacity: Option<usize>) -> Arc<Self> {
            Arc::new(Shared {
                queue: Mutex::new(VecDeque::new()),
                ready: Condvar::new(),
                space: Condvar::new(),
                senders: AtomicUsize::new(1),
                receivers: AtomicUsize::new(1),
                capacity,
            })
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Shared::new(None);
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Create a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Shared::new(Some(cap.max(1)));
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders disconnected.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message before the timeout.
        Timeout,
        /// Channel empty and all senders disconnected.
        Disconnected,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Send a message, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let shared = &self.shared;
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if shared.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(value));
                }
                match shared.capacity {
                    Some(cap) if queue.len() >= cap => {
                        queue = shared
                            .space
                            .wait(queue)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    _ => break,
                }
            }
            queue.push_back(value);
            drop(queue);
            shared.ready.notify_one();
            Ok(())
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len()
        }

        /// Is the queue empty?
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake every parked receiver so they can
                // observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// Receive a message, blocking until one is available or all
        /// senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let shared = &self.shared;
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    shared.space.notify_one();
                    return Ok(value);
                }
                if shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let shared = &self.shared;
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(value) = queue.pop_front() {
                drop(queue);
                shared.space.notify_one();
                return Ok(value);
            }
            if shared.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receive with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let shared = &self.shared;
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    shared.space.notify_one();
                    return Ok(value);
                }
                if shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (q, _) = shared
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = q;
            }
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len()
        }

        /// Is the queue empty?
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator over received messages; ends when all
        /// senders disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last receiver: wake blocked senders so they can
                // observe the disconnect.
                self.shared.space.notify_all();
            }
        }
    }

    /// Borrowing blocking iterator.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// Owning blocking iterator.
    pub struct IntoIter<T> {
        receiver: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { receiver: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn mpmc_round_trip() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            let rx2 = rx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            let a = rx.recv().unwrap();
            let b = rx2.recv().unwrap();
            assert_eq!(a + b, 3);
        }

        #[test]
        fn iteration_ends_when_senders_drop() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            drop(tx);
            let got: Vec<u32> = rx.into_iter().collect();
            assert_eq!(got, vec![1, 2]);
        }

        #[test]
        fn bounded_blocks_until_space() {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(1).unwrap();
            let t = thread::spawn(move || tx.send(2).unwrap());
            thread::sleep(Duration::from_millis(10));
            assert_eq!(rx.recv().unwrap(), 1);
            t.join().unwrap();
            assert_eq!(rx.recv().unwrap(), 2);
        }

        #[test]
        fn send_to_dropped_receiver_errors() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }
    }
}
