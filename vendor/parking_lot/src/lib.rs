//! Minimal API-compatible stand-in for `parking_lot`, implemented on
//! top of `std::sync` primitives.
//!
//! The build environment has no registry access, so the workspace
//! vendors the subset of the `parking_lot` API it actually uses:
//! [`Mutex`], [`RwLock`], [`Condvar`] and their guards, all without
//! lock poisoning (a poisoned std lock is transparently recovered,
//! matching parking_lot's behaviour of not poisoning at all).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::{Duration, Instant};

/// A mutual exclusion primitive (no poisoning).
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A condition variable pairing with [`Mutex`].
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Block until notified or the absolute `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        if timeout.is_zero() {
            return WaitTimeoutResult { timed_out: true };
        }
        self.wait_for(guard, timeout)
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Did the wait time out (as opposed to being notified)?
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A reader-writer lock (no poisoning).
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new RwLock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self
                .inner
                .read()
                .unwrap_or_else(sync::PoisonError::into_inner),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self
                .inner
                .write()
                .unwrap_or_else(sync::PoisonError::into_inner),
        }
    }

    /// Try to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

/// RAII shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_and_condvar_round_trip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut done = lock.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
