//! Minimal offline stand-in for `proptest`.
//!
//! Implements the strategy combinators, macros, and runner surface
//! this workspace actually uses: `proptest!`, `prop_assert*`,
//! `prop_assume!`, `prop_oneof!`, `Just`, `any`, ranges and string
//! patterns as strategies, and `proptest::collection::{vec,
//! btree_set}`. Case generation is deterministic per test name so
//! failures reproduce across runs.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

// ---------------------------------------------------------------------------
// Core strategy abstraction
// ---------------------------------------------------------------------------

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no shrinking: a failing case reports
/// its deterministic seed instead of a minimized input.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value; `None` means the case was rejected (e.g.
    /// by a filter) and the runner should draw a fresh case.
    fn generate(&self, rng: &mut StdRng) -> Option<Self::Value>;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Reject values failing the predicate.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            f,
        }
    }

    /// Type-erase for heterogeneous unions (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> Option<U> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// `prop_filter` adapter: retries locally a few times, then rejects
/// the whole case so the runner draws fresh input.
pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    reason: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
        for _ in 0..16 {
            if let Some(v) = self.inner.generate(rng) {
                if (self.f)(&v) {
                    return Some(v);
                }
            }
        }
        None
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> Option<T> {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the alternatives; panics if empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> Option<T> {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: ranges, any::<T>(), string patterns, tuples
// ---------------------------------------------------------------------------

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value of the type.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        // Mix special values in, like real proptest's any::<f64>().
        match rng.gen_range(0u32..16) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 0.0,
            4 => -0.0,
            _ => f64::from_bits(rng.next_u64()),
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut StdRng) -> char {
        if rng.gen_range(0u32..8) == 0 {
            char::from_u32(rng.gen_range(0x80u32..0x2000)).unwrap_or('\u{fffd}')
        } else {
            rng.gen_range(0x20u32..0x7f) as u8 as char
        }
    }
}

/// Strategy wrapper returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// String literals act as (very small) regex strategies. Supported
/// shapes: `\PC{m,n}` (printable chars, length m..=n) and a plain
/// alphanumeric fallback for anything else.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> Option<String> {
        let (lo, hi) = parse_repeat_bounds(self).unwrap_or((0, 16));
        let len = rng.gen_range(lo..=hi);
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            if self.contains("\\PC") {
                out.push(char::arbitrary(rng));
            } else {
                const ALNUM: &[u8] =
                    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
                out.push(ALNUM[rng.gen_range(0..ALNUM.len())] as char);
            }
        }
        Some(out)
    }
}

fn parse_repeat_bounds(pattern: &str) -> Option<(usize, usize)> {
    let open = pattern.find('{')?;
    let close = pattern[open..].find('}')? + open;
    let body = &pattern[open + 1..close];
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut StdRng) -> Option<Self::Value> {
        Some((self.0.generate(rng)?, self.1.generate(rng)?))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut StdRng) -> Option<Self::Value> {
        Some((
            self.0.generate(rng)?,
            self.1.generate(rng)?,
            self.2.generate(rng)?,
        ))
    }
}

// ---------------------------------------------------------------------------
// Collection strategies
// ---------------------------------------------------------------------------

/// `proptest::collection`: sized containers of generated elements.
pub mod collection {
    use super::*;
    use std::collections::BTreeSet;

    /// Accepted size specifiers for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<Vec<S::Value>> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.generate(rng)?);
            }
            Some(out)
        }
    }

    /// A vector whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<BTreeSet<S::Value>> {
            let want = rng.gen_range(self.size.lo..=self.size.hi);
            let mut out = BTreeSet::new();
            // Duplicates shrink the set; retry a bounded number of
            // times to approach the requested cardinality.
            for _ in 0..want * 4 + 4 {
                if out.len() >= want {
                    break;
                }
                out.insert(self.element.generate(rng)?);
            }
            Some(out)
        }
    }

    /// A set whose cardinality approaches a draw from `size`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Input rejected (filter or `prop_assume!`); draw a fresh case.
    Reject,
    /// Assertion failure with message.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Result alias used by generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Drive one property: deterministic seeds derived from the test
/// name, bounded rejection budget, panic (with seed) on failure.
pub fn run_test(
    config: ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut StdRng) -> TestCaseResult,
) {
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let max_rejects = config.cases.saturating_mul(16).max(256);
    let mut attempt = 0u64;
    while passed < config.cases {
        let mut hasher = DefaultHasher::new();
        name.hash(&mut hasher);
        attempt.hash(&mut hasher);
        let seed = hasher.finish();
        let mut rng = StdRng::seed_from_u64(seed);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "{name}: too many rejected inputs ({rejected}) after {passed} passing cases"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed on case seed {seed:#x}: {msg}");
            }
        }
        attempt += 1;
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests. Each `fn name(arg in strategy, ...) { .. }`
/// becomes a normal `#[test]` driving [`run_test`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($config); $($rest)*);
    };
    (@funcs ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::run_test(
                __config,
                concat!(module_path!(), "::", stringify!($name)),
                |__rng| {
                    $(
                        let $arg = match $crate::Strategy::generate(&($strat), __rng) {
                            ::std::option::Option::Some(v) => v,
                            ::std::option::Option::None => {
                                return ::std::result::Result::Err($crate::TestCaseError::Reject)
                            }
                        };
                    )+
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Assert within a property body; failure aborts only this case set.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality with `Debug` output of both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Assert inequality with `Debug` output of both sides on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Discard the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Everything a property test module typically imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
    pub use rand::rngs::StdRng;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in -2.0f32..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y), "y = {y}");
        }

        #[test]
        fn vec_respects_exact_size(v in crate::collection::vec(0u8..5, 7)) {
            prop_assert_eq!(v.len(), 7);
        }

        #[test]
        fn assume_discards(a in any::<i64>(), b in any::<i64>()) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![
                Just(0usize),
                (1usize..4).prop_map(|x| x * 10),
            ]
        ) {
            prop_assert!(v == 0 || (10..40).contains(&v));
        }

        #[test]
        fn string_pattern_bounds(s in "\\PC{0,8}") {
            prop_assert!(s.chars().count() <= 8);
        }
    }

    #[test]
    fn filter_rejection_is_bounded() {
        let strat = (0u32..10).prop_filter("never", |_| false);
        let mut rng = StdRng::seed_from_u64(7);
        assert!(crate::Strategy::generate(&strat, &mut rng).is_none());
    }
}
