//! Minimal API-compatible stand-in for the `rand` crate.
//!
//! Provides the subset this workspace uses: [`rngs::StdRng`] (a
//! deterministic xoshiro256++ generator), [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over primitive numeric ranges, [`thread_rng`],
//! [`distributions::Alphanumeric`] with [`Rng::sample_iter`], and
//! [`seq::SliceRandom::shuffle`]. Streams differ from the real crate
//! but are deterministic per seed.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Construct from OS/system entropy (time + counter here).
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

fn entropy_seed() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static CTR: AtomicU64 = AtomicU64::new(0x9e37_79b9);
    let t = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    t ^ CTR.fetch_add(0x517c_c1b7_2722_0a95, Ordering::Relaxed)
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Sample a value from the `Standard` distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Random bool with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen_range(0.0f64..1.0) < p
    }

    /// Consume the RNG into an infinite sampling iterator.
    fn sample_iter<T, D>(self, distr: D) -> distributions::DistIter<D, Self, T>
    where
        D: distributions::Distribution<T>,
        Self: Sized,
    {
        distributions::DistIter::new(distr, self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that [`Rng::gen_range`] can sample uniformly. The generic
/// `SampleRange` impls below are deliberately parameterized over this
/// trait (as in the real crate) so that type inference can flow from
/// the surrounding expression into the range literal.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or
    /// `[lo, hi]` (`inclusive = true`).
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        T::sample_between(rng, start, end, true)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for rand's
    /// ChaCha-based StdRng; streams differ, determinism per seed
    /// holds).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro
            // authors for seeding.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// The RNG returned by [`crate::thread_rng`].
    #[derive(Debug, Clone)]
    pub struct ThreadRng {
        inner: StdRng,
    }

    impl ThreadRng {
        pub(crate) fn new() -> Self {
            ThreadRng {
                inner: StdRng::from_entropy(),
            }
        }
    }

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// A fresh non-deterministic generator (per call here, per thread in
/// the real crate — equivalent for the workspace's uses).
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

/// Distributions.
pub mod distributions {
    use super::{Rng, RngCore};

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            (**self).sample(rng)
        }
    }

    /// The "natural" distribution for a type.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
        }
    }

    /// Uniformly random ASCII letters and digits (as `u8`).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Alphanumeric;

    impl Distribution<u8> for Alphanumeric {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
            const CHARSET: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ\
                                     abcdefghijklmnopqrstuvwxyz\
                                     0123456789";
            let idx = rng.gen_range(0..CHARSET.len());
            CHARSET[idx]
        }
    }

    /// Infinite iterator of samples (see [`crate::Rng::sample_iter`]).
    pub struct DistIter<D, R, T> {
        distr: D,
        rng: R,
        _marker: std::marker::PhantomData<T>,
    }

    impl<D, R, T> DistIter<D, R, T> {
        pub(crate) fn new(distr: D, rng: R) -> Self {
            DistIter {
                distr,
                rng,
                _marker: std::marker::PhantomData,
            }
        }
    }

    impl<D, R, T> Iterator for DistIter<D, R, T>
    where
        D: Distribution<T>,
        R: RngCore,
    {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            Some(self.distr.sample(&mut self.rng))
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Common imports.
pub mod prelude {
    pub use super::distributions::Distribution;
    pub use super::rngs::{StdRng, ThreadRng};
    pub use super::seq::SliceRandom;
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::distributions::Alphanumeric;
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let neg = rng.gen_range(-5i64..-1);
            assert!((-5..-1).contains(&neg));
        }
    }

    #[test]
    fn alphanumeric_samples_charset() {
        let s: String = thread_rng()
            .sample_iter(&Alphanumeric)
            .take(32)
            .map(char::from)
            .collect();
        assert_eq!(s.len(), 32);
        assert!(s.chars().all(|c| c.is_ascii_alphanumeric()));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }
}
