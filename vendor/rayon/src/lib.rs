//! Minimal API-compatible stand-in for `rayon`.
//!
//! Implements the subset of the parallel-iterator API this workspace
//! uses (`par_iter`, `par_chunks_mut`, `into_par_iter` with `map` /
//! `filter` / `enumerate` / `for_each` / `collect` / `reduce` /
//! `count`) on top of `std::thread::scope` with contiguous chunk
//! partitioning. Order-preserving, statically scheduled.

use std::ops::Range;

fn worker_count(items: usize) -> usize {
    if items <= 1 {
        return 1;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items)
}

/// Run `f` over `items` on scoped threads, preserving input order in
/// the output.
fn run_map<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = worker_count(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items.into_iter();
    loop {
        let chunk: Vec<T> = items.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let mut out: Vec<Vec<U>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        for handle in handles {
            out.push(handle.join().expect("parallel worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// A materialized parallel iterator over `T`.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Lazily map each item (runs when consumed).
    pub fn map<U, F>(self, f: F) -> ParMap<T, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Keep items matching `pred` (evaluated in parallel).
    pub fn filter<P>(self, pred: P) -> ParIter<T>
    where
        P: Fn(&T) -> bool + Sync,
    {
        let keep = run_map(self.items, &|item: T| {
            let keep = pred(&item);
            (keep, item)
        });
        ParIter {
            items: keep
                .into_iter()
                .filter_map(|(keep, item)| keep.then_some(item))
                .collect(),
        }
    }

    /// Pair each item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Run `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_map(self.items, &|item| f(item));
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Collect the items.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Parallel fold-and-combine with an identity factory.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T + Sync,
        OP: Fn(T, T) -> T + Sync,
    {
        self.items.into_iter().fold(identity(), &op)
    }
}

/// A lazily mapped parallel iterator.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, U, F> ParMap<T, F>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    /// Run the map in parallel and collect the results in order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        run_map(self.items, &self.f).into_iter().collect()
    }

    /// Run the map in parallel, then combine results with `op`
    /// starting from `identity()`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> U
    where
        ID: Fn() -> U + Sync,
        OP: Fn(U, U) -> U + Sync,
    {
        run_map(self.items, &self.f)
            .into_iter()
            .fold(identity(), &op)
    }

    /// Run the map in parallel for its side effects.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(U) + Sync,
    {
        let f = &self.f;
        run_map(self.items, &|item| g(f(item)));
    }

    /// Number of mapped items (consumes without running `f`).
    pub fn count(self) -> usize {
        self.items.len()
    }
}

/// Types convertible into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Convert.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

macro_rules! range_into_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter {
                    items: self.collect(),
                }
            }
        }
    )*};
}

range_into_par_iter!(u32, u64, usize, i32, i64);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// `par_iter` on slices (and, via deref, `Vec`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over shared references.
    fn par_iter(&self) -> ParIter<&T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `par_iter_mut` / `par_chunks_mut` on slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over exclusive references.
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;
    /// Parallel iterator over non-overlapping mutable chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Common imports.
pub mod prelude {
    pub use super::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let doubled: Vec<usize> = (0usize..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(doubled, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_mut_enumerate_for_each() {
        let mut data = vec![0u32; 64];
        data.par_chunks_mut(8).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i as u32;
            }
        });
        assert_eq!(data[0], 0);
        assert_eq!(data[63], 7);
    }

    #[test]
    fn filter_count_and_reduce() {
        let evens = (0..100).into_par_iter().filter(|i| i % 2 == 0).count();
        assert_eq!(evens, 50);
        let data = [1u64, 2, 3, 4];
        let sum = data.par_iter().map(|&v| v).reduce(|| 0, |a, b| a + b);
        assert_eq!(sum, 10);
    }
}
