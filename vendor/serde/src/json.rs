//! The JSON data model shared by the vendored `serde` and
//! `serde_json` crates: [`Value`], [`Number`], and [`Map`].

use std::borrow::Borrow;
use std::collections::btree_map;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A JSON number: unsigned integer, signed integer, or float —
/// mirroring `serde_json::Number`'s three categories.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point.
    Float(f64),
}

impl Number {
    /// View as `f64` (always possible).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::PosInt(v) => Some(v as f64),
            Number::NegInt(v) => Some(v as f64),
            Number::Float(v) => Some(v),
        }
    }

    /// View as `u64` if non-negative integral.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            _ => None,
        }
    }

    /// View as `i64` if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(_) => None,
        }
    }

    /// Is this a float category number?
    pub fn is_f64(&self) -> bool {
        matches!(self, Number::Float(_))
    }

    /// Construct from a finite float.
    pub fn from_f64(f: f64) -> Option<Number> {
        if f.is_finite() {
            Some(Number::Float(f))
        } else {
            None
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(v) => write!(f, "{v}"),
            Number::NegInt(v) => write!(f, "{v}"),
            Number::Float(v) => {
                if !v.is_finite() {
                    // JSON has no non-finite literals; match
                    // serde_json's raw-value fallback of null.
                    return f.write_str("null");
                }
                // Rust's shortest-roundtrip Display never uses
                // exponents; tag integral floats with `.0` so the
                // float category survives a round trip.
                let s = format!("{v}");
                if s.contains('.') {
                    f.write_str(&s)
                } else {
                    write!(f, "{s}.0")
                }
            }
        }
    }
}

/// An ordered string-keyed map (BTreeMap-backed, like serde_json's
/// default).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map<K: Ord = String, V = Value> {
    inner: BTreeMap<K, V>,
}

impl<K: Ord, V> Map<K, V> {
    /// Empty map.
    pub fn new() -> Self {
        Map {
            inner: BTreeMap::new(),
        }
    }

    /// Insert, returning any previous value for the key.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.inner.insert(key, value)
    }

    /// Look up by key.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.inner.get(key)
    }

    /// Mutable lookup.
    pub fn get_mut<Q>(&mut self, key: &Q) -> Option<&mut V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.inner.get_mut(key)
    }

    /// Does the map contain `key`?
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.inner.contains_key(key)
    }

    /// Remove by key.
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.inner.remove(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Iterator over `(key, value)` pairs in key order.
    pub fn iter(&self) -> btree_map::Iter<'_, K, V> {
        self.inner.iter()
    }

    /// Iterator over keys in order.
    pub fn keys(&self) -> btree_map::Keys<'_, K, V> {
        self.inner.keys()
    }

    /// Iterator over values in key order.
    pub fn values(&self) -> btree_map::Values<'_, K, V> {
        self.inner.values()
    }
}

impl<K: Ord, V> FromIterator<(K, V)> for Map<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        Map {
            inner: iter.into_iter().collect(),
        }
    }
}

impl<K: Ord, V> IntoIterator for Map<K, V> {
    type Item = (K, V);
    type IntoIter = btree_map::IntoIter<K, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl<'a, K: Ord, V> IntoIterator for &'a Map<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = btree_map::Iter<'a, K, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl<K, V, Q> Index<&Q> for Map<K, V>
where
    K: Ord + Borrow<Q>,
    Q: Ord + ?Sized,
{
    type Output = V;
    fn index(&self, key: &Q) -> &V {
        self.inner.get(key).expect("no entry found for key")
    }
}

/// A JSON value, structurally identical to `serde_json::Value`.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object.
    Object(Map<String, Value>),
}

impl Value {
    /// Object field lookup (None for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Borrow as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric view as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// Numeric view as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Numeric view as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Borrow as an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Is this `null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

static NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl IndexMut<&str> for Value {
    /// Like serde_json: `Null` auto-vivifies to an object, a missing
    /// key is inserted as `Null`, and indexing any other kind panics.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if matches!(self, Value::Null) {
            *self = Value::Object(Map::new());
        }
        match self {
            Value::Object(m) => {
                if !m.contains_key(key) {
                    m.insert(key.to_string(), Value::Null);
                }
                m.get_mut(key).expect("just inserted")
            }
            other => panic!("cannot index {other:?} with a string key"),
        }
    }
}

impl IndexMut<usize> for Value {
    fn index_mut(&mut self, idx: usize) -> &mut Value {
        match self {
            Value::Array(a) => &mut a[idx],
            other => panic!("cannot index {other:?} with a usize"),
        }
    }
}

macro_rules! value_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::PosInt(v as u64))
            }
        }
    )*};
}
value_from_unsigned!(u8, u16, u32, u64, usize);

macro_rules! value_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                let v = v as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
    )*};
}
value_from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Number::from_f64(v).map_or(Value::Null, Value::Number)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::from(v as f64)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<Map<String, Value>> for Value {
    fn from(v: Map<String, Value>) -> Value {
        Value::Object(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}

macro_rules! value_eq_prim {
    ($($t:ty => $conv:expr),* $(,)?) => {$(
        impl PartialEq<$t> for Value {
            #[allow(clippy::redundant_closure_call)]
            fn eq(&self, other: &$t) -> bool {
                self == &($conv)(other.clone())
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
value_eq_prim! {
    i32 => Value::from,
    i64 => Value::from,
    u32 => Value::from,
    u64 => Value::from,
    usize => Value::from,
    f64 => Value::from,
    bool => Value::from,
    &str => Value::from,
    String => Value::from,
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

fn escape_json_string(s: &str, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    out.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            '\u{08}' => out.write_str("\\b")?,
            '\u{0C}' => out.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    out.write_str("\"")
}

impl fmt::Display for Value {
    /// Compact JSON rendering, matching `serde_json::to_string`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => escape_json_string(s, f),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape_json_string(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}
