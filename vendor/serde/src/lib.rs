//! Minimal API-compatible stand-in for `serde`.
//!
//! The build environment has no registry access, so the workspace
//! vendors a small serde: the [`Serialize`] / [`Deserialize`] traits
//! are defined directly over the JSON data model in [`json`] (shared
//! with the vendored `serde_json`), and the derive macros come from
//! the companion `serde_derive` proc-macro crate. Wire encodings
//! (externally tagged enums, `Result` as `{"Ok": ..}` / `{"Err": ..}`,
//! newtype transparency) match real serde's JSON behaviour.

pub mod json;

use json::{Map, Number, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Construct from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into the JSON data model.
pub trait Serialize {
    /// Produce the JSON representation.
    fn serialize(&self) -> Value;
}

/// Types that can be reconstructed from the JSON data model.
pub trait Deserialize: Sized {
    /// Parse from a JSON value.
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
    )*};
}
serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
    )*};
}
serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Number::from_f64(*self).map_or(Value::Null, Value::Number)
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        // f64 represents every f32 exactly, and the narrowing cast on
        // deserialize rounds back to the original, so f32 data
        // round-trips exactly through the f64-backed number model.
        Number::from_f64(*self as f64).map_or(Value::Null, Value::Number)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Array(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn serialize(&self) -> Value {
        let mut m = Map::new();
        match self {
            Ok(v) => m.insert("Ok".to_string(), v.serialize()),
            Err(e) => m.insert("Err".to_string(), e.serialize()),
        };
        Value::Object(m)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.serialize());
        }
        Value::Object(m)
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.serialize());
        }
        Value::Object(m)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Serialize for Map<String, Value> {
    fn serialize(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl Serialize for Number {
    fn serialize(&self) -> Value {
        Value::Number(*self)
    }
}

// ---------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------

fn type_err<T>(expected: &str, got: &Value) -> Result<T, DeError> {
    let kind = match got {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Number(_) => "number",
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    };
    Err(DeError::custom(format!("expected {expected}, got {kind}")))
}

macro_rules! deserialize_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => n
                        .as_u64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| {
                            DeError::custom(concat!("number out of range for ", stringify!($t)))
                        }),
                    other => type_err(stringify!($t), other),
                }
            }
        }
    )*};
}
deserialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! deserialize_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| {
                            DeError::custom(concat!("number out of range for ", stringify!($t)))
                        }),
                    other => type_err(stringify!($t), other),
                }
            }
        }
    )*};
}
deserialize_signed!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Number(n) => n.as_f64().ok_or_else(|| DeError::custom("bad f64")),
            other => type_err("f64", other),
        }
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => type_err("bool", other),
        }
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => type_err("single-character string", other),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => type_err("array", other),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
            }
            other => type_err("2-element array", other),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::deserialize(&items[0])?,
                B::deserialize(&items[1])?,
                C::deserialize(&items[2])?,
            )),
            other => type_err("3-element array", other),
        }
    }
}

impl<T: Deserialize, E: Deserialize> Deserialize for Result<T, E> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(m) if m.len() == 1 => {
                let (k, inner) = m.iter().next().expect("len checked");
                match k.as_str() {
                    "Ok" => Ok(Ok(T::deserialize(inner)?)),
                    "Err" => Ok(Err(E::deserialize(inner)?)),
                    other => Err(DeError::custom(format!(
                        "expected Ok or Err variant, got {other}"
                    ))),
                }
            }
            other => type_err("Result object", other),
        }
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::deserialize(val)?)))
                .collect(),
            other => type_err("object", other),
        }
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::deserialize(val)?)))
                .collect(),
            other => type_err("object", other),
        }
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => type_err("array", other),
        }
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Deserialize for Map<String, Value> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(m) => Ok(m.clone()),
            other => type_err("object", other),
        }
    }
}

// ---------------------------------------------------------------
// Support functions used by serde_derive-generated code
// ---------------------------------------------------------------

/// Fetch and deserialize a struct field; a missing field falls back to
/// deserializing from `null` (so `Option` fields may be omitted, as
/// with real serde).
pub fn __get_field<T: Deserialize>(
    m: &Map<String, Value>,
    key: &str,
    ty: &str,
) -> Result<T, DeError> {
    match m.get(key) {
        Some(v) => {
            T::deserialize(v).map_err(|e| DeError::custom(format!("field `{key}` of {ty}: {e}")))
        }
        None => T::deserialize(&Value::Null)
            .map_err(|_| DeError::custom(format!("missing field `{key}` in {ty}"))),
    }
}

/// Build the externally-tagged single-key object `{"Variant": inner}`.
pub fn __variant_object(name: &str, inner: Value) -> Value {
    let mut m = Map::new();
    m.insert(name.to_string(), inner);
    Value::Object(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_round_trips_like_serde() {
        let ok: Result<Vec<u32>, String> = Ok(vec![1, 2]);
        assert_eq!(ok.serialize().to_string(), r#"{"Ok":[1,2]}"#);
        let back: Result<Vec<u32>, String> = Deserialize::deserialize(&ok.serialize()).unwrap();
        assert_eq!(back, Ok(vec![1, 2]));
        let err: Result<Vec<u32>, String> = Err("boom".into());
        let back: Result<Vec<u32>, String> = Deserialize::deserialize(&err.serialize()).unwrap();
        assert_eq!(back, Err("boom".into()));
    }

    #[test]
    fn option_from_missing_null() {
        let none: Option<u32> = Deserialize::deserialize(&Value::Null).unwrap();
        assert_eq!(none, None);
        let some: Option<u32> = Deserialize::deserialize(&5u32.serialize()).unwrap();
        assert_eq!(some, Some(5));
    }

    #[test]
    fn float_display_keeps_category() {
        assert_eq!(1.0f64.serialize().to_string(), "1.0");
        assert_eq!(1.5f64.serialize().to_string(), "1.5");
        assert_eq!(1u64.serialize().to_string(), "1");
    }
}
