//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for
//! the vendored `serde`, written directly against `proc_macro` (no
//! syn/quote — the build environment is offline).
//!
//! Supported shapes — exactly what this workspace derives on:
//! named-field structs, tuple structs (newtype transparency for one
//! field, arrays otherwise), and enums with unit / newtype / tuple /
//! struct variants using serde's externally-tagged JSON encoding
//! (`"Variant"`, `{"Variant": inner}`). Generics and `#[serde(..)]`
//! attributes are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Input {
    name: String,
    shape: Shape,
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // attribute
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                i += 1; // visibility / modifiers
            }
            Some(_) => i += 1,
            None => panic!("serde_derive: no struct or enum found"),
        }
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive: generic types are not supported (type {name})");
        }
    }
    let shape = if kind == "enum" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: expected enum body, got {other:?}"),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde_derive: expected struct body, got {other:?}"),
        }
    };
    Input { name, shape }
}

/// Extract the field names from a named-field body. Types are skipped
/// wholesale (codegen relies on inference), tracking `<`/`>` depth so
/// commas inside generics don't split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
            TokenTree::Ident(id) => {
                fields.push(id.to_string());
                i += 1; // past the name
                i += 1; // past the ':'
                let mut depth = 0i32;
                while i < tokens.len() {
                    if let TokenTree::Punct(p) = &tokens[i] {
                        match p.as_char() {
                            '<' => depth += 1,
                            '>' => depth -= 1,
                            ',' if depth == 0 => {
                                i += 1;
                                break;
                            }
                            _ => {}
                        }
                    }
                    i += 1;
                }
            }
            other => panic!("serde_derive: unexpected token in fields: {other:?}"),
        }
    }
    fields
}

/// Count tuple-struct / tuple-variant fields: depth-0 commas + 1.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut saw_trailing_comma = false;
    for tok in &tokens {
        saw_trailing_comma = false;
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    count += 1;
                    saw_trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if saw_trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {
                i += 1;
                continue;
            }
            TokenTree::Ident(id) => {
                let name = id.to_string();
                i += 1;
                let kind = match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        i += 1;
                        match count_tuple_fields(g.stream()) {
                            1 => VariantKind::Newtype,
                            n => VariantKind::Tuple(n),
                        }
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        i += 1;
                        VariantKind::Struct(parse_named_fields(g.stream()))
                    }
                    _ => VariantKind::Unit,
                };
                variants.push(Variant { name, kind });
            }
            other => panic!("serde_derive: unexpected token in variants: {other:?}"),
        }
    }
    variants
}

// ---------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let mut s = String::from("let mut __map = ::serde::json::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "__map.insert(::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::serialize(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::json::Value::Object(__map)");
            s
        }
        Shape::TupleStruct(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!(
                "::serde::json::Value::Array(::std::vec![{}])",
                items.join(", ")
            )
        }
        Shape::UnitStruct => "::serde::json::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::json::Value::String(\
                         ::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantKind::Newtype => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::__variant_object(\
                         \"{vn}\", ::serde::Serialize::serialize(__f0)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::__variant_object(\"{vn}\", \
                             ::serde::json::Value::Array(::std::vec![{}])),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| format!("{f}: __field_{f}")).collect();
                        let mut inner =
                            String::from("let mut __map = ::serde::json::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "__map.insert(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::serialize(__field_{f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{ {inner} \
                             ::serde::__variant_object(\"{vn}\", \
                             ::serde::json::Value::Object(__map)) }},\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, unused_variables, unreachable_patterns, unreachable_code)]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::json::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__get_field(__m, \"{f}\", \"{name}\")?"))
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::json::Value::Object(__m) => ::std::result::Result::Ok({name} {{ {} }}),\n\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 \"expected object for {name}\")),\n}}",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&__a[{i}])?"))
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::json::Value::Array(__a) if __a.len() == {n} => \
                 ::std::result::Result::Ok({name}({})),\n\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 \"expected {n}-element array for {name}\")),\n}}",
                inits.join(", ")
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                        // Also accept the tagged-null form for
                        // leniency ({"Variant": null}).
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    VariantKind::Newtype => tagged_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::deserialize(__inner)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::deserialize(&__a[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => match __inner {{\n\
                             ::serde::json::Value::Array(__a) if __a.len() == {n} => \
                             ::std::result::Result::Ok({name}::{vn}({})),\n\
                             _ => ::std::result::Result::Err(::serde::DeError::custom(\
                             \"expected {n}-element array for {name}::{vn}\")),\n}},\n",
                            inits.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::__get_field(__sm, \"{f}\", \"{name}::{vn}\")?"
                                )
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => match __inner {{\n\
                             ::serde::json::Value::Object(__sm) => \
                             ::std::result::Result::Ok({name}::{vn} {{ {} }}),\n\
                             _ => ::std::result::Result::Err(::serde::DeError::custom(\
                             \"expected object for {name}::{vn}\")),\n}},\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::json::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"unknown unit variant `{{__other}}` of {name}\"))),\n}},\n\
                 ::serde::json::Value::Object(__m) if __m.len() == 1 => {{\n\
                 let (__k, __inner) = __m.iter().next().expect(\"len checked\");\n\
                 let _ = &__inner;\n\
                 match __k.as_str() {{\n\
                 {tagged_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n}}\n}},\n\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 \"expected externally tagged enum for {name}\")),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, unused_variables, unreachable_patterns, unreachable_code)]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(__v: &::serde::json::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}
