//! Minimal offline stand-in for `serde_json`.
//!
//! Re-exports the shared JSON data model from the vendored `serde`
//! crate and adds a recursive-descent parser, compact/pretty
//! printers, and the `json!` macro. Numbers keep serde_json's three
//! categories (u64 / i64 / f64); floats parse via `str::parse::<f64>`
//! (correctly rounded, i.e. `float_roundtrip` behaviour) and print
//! via Rust's shortest-roundtrip `Display`.

use std::fmt;

pub use serde::json::{Map, Number, Value};
use serde::{Deserialize, Serialize};

/// Parse or conversion error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Nesting depth limit guarding against stack overflow on adversarial
/// input (serde_json uses 128 by default).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Parser { bytes, pos: 0 }
    }

    fn err(&self, msg: impl fmt::Display) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => {
                Err(self.err(format!("expected `{}`, found `{}`", b as char, got as char)))
            }
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        let end = self.pos + kw.len();
        if self.bytes.len() >= end && &self.bytes[self.pos..end] == kw.as_bytes() {
            self.pos = end;
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`")))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(self.err("recursion limit exceeded"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(b) => Err(self.err(format!("unexpected character `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                Some(b) => {
                    return Err(self.err(format!("expected `,` or `]`, found `{}`", b as char)))
                }
                None => return Err(self.err("unexpected end of input in array")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                Some(b) => {
                    return Err(self.err(format!("expected `,` or `}}`, found `{}`", b as char)))
                }
                None => return Err(self.err("unexpected end of input in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let hi = self.parse_hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: a low surrogate must follow.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else if (0xDC00..0xE000).contains(&hi) {
                            return Err(self.err("unexpected low surrogate"));
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| self.err("invalid unicode escape"))?,
                        );
                    }
                    Some(b) => return Err(self.err(format!("invalid escape `\\{}`", b as char))),
                    None => return Err(self.err("unexpected end of input in string")),
                },
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: re-decode from the raw bytes.
                    let start = self.pos - 1;
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8 byte")),
                    };
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 sequence"))?;
                    out.push_str(s);
                    self.pos = end;
                }
                None => return Err(self.err("unexpected end of input in string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("unexpected end of input in \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Value::Number(Number::NegInt(v)));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
            // Integer out of u64/i64 range: fall through to float.
        }
        let v: f64 = text
            .parse()
            .map_err(|_| self.err(format!("invalid number `{text}`")))?;
        Ok(Value::Number(Number::Float(v)))
    }
}

/// Parse a JSON document from a string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    from_slice(s.as_bytes())
}

/// Parse a JSON document from bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let mut p = Parser::new(bytes);
    let value = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(T::deserialize(&value)?)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    Ok(value.serialize().to_string())
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>> {
    Ok(to_string(value)?.into_bytes())
}

/// Serialize to a two-space-indented JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.serialize(), 0, &mut out);
    Ok(out)
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                push_indent(indent + 1, out);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                push_indent(indent + 1, out);
                out.push_str(&Value::String(k.clone()).to_string());
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

fn push_indent(levels: usize, out: &mut String) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

// ---------------------------------------------------------------------------
// Value conversions
// ---------------------------------------------------------------------------

/// Convert any serializable type into a [`Value`].
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.serialize())
}

/// Convert a [`Value`] into any deserializable type.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    Ok(T::deserialize(&value)?)
}

/// Interpolation helper for `json!`; not public API.
#[doc(hidden)]
pub fn __to_value<T: Serialize>(value: T) -> Value {
    value.serialize()
}

// ---------------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------------

/// Construct a [`Value`] from a JSON-like literal, with `$expr`
/// interpolation via the vendored `Serialize` trait.
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
}

/// Implementation detail of [`json!`]; a TT-muncher patterned on the
/// real serde_json `json_internal!`.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ---- arrays: accumulate elements into [$($elems),*] ----

    // Done with trailing comma.
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    // Done without trailing comma.
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    // Next element is `null`.
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    // Next element is `true`.
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    // Next element is `false`.
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    // Next element is an array.
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    // Next element is an object.
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    // Next element is an expression followed by a comma.
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    // Last element is an expression with no trailing comma.
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    // Comma after the most recent element.
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ---- objects: insert (key, value) pairs into $object ----
    // State: (@object $map (key tokens) (value tokens))

    // Done.
    (@object $object:ident () () ()) => {};
    // Insert the current entry followed by trailing comma.
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    // Current entry followed by unexpected token (error path: let it fail).
    (@object $object:ident [$($key:tt)+] ($value:expr) $unexpected:tt $($rest:tt)*) => {
        $crate::json_unexpected!($unexpected)
    };
    // Insert the last entry without trailing comma.
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    // Next value is `null`.
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    // Next value is `true`.
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    // Next value is `false`.
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    // Next value is an array.
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    // Next value is an object.
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    // Next value is an expression followed by a comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    // Last value is an expression without trailing comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    // Missing value for the last entry: trigger a reasonable error.
    (@object $object:ident ($($key:tt)+) (:) $copy:tt) => {
        $crate::json_internal!()
    };
    // Missing colon and value.
    (@object $object:ident ($($key:tt)+) () $copy:tt) => {
        $crate::json_internal!()
    };
    // Munch a token into the current key.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    // ---- entry points ----

    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(vec![])
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    // Any Serialize expression.
    ($other:expr) => {
        $crate::__to_value(&$other)
    };
}

/// Error reporting helper for [`json!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_unexpected {
    () => {};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        let src = r#"{"a":[1,2.5,-3],"b":"x\"yé","c":null,"d":true}"#;
        let v: Value = from_str(src).unwrap();
        assert_eq!(v["a"][0], 1u64);
        assert_eq!(v["a"][1], 2.5f64);
        assert_eq!(v["a"][2], -3i64);
        assert_eq!(v["b"], "x\"y\u{e9}");
        assert!(v["c"].is_null());
        assert_eq!(to_string(&v).unwrap(), src);
    }

    #[test]
    fn number_categories() {
        let v: Value = from_str("[18446744073709551615, -9223372036854775808, 1.0]").unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(u64::MAX));
        assert_eq!(arr[1].as_i64(), Some(i64::MIN));
        assert!(matches!(arr[2], Value::Number(Number::Float(_))));
        assert_eq!(
            to_string(&v).unwrap(),
            "[18446744073709551615,-9223372036854775808,1.0]"
        );
    }

    #[test]
    fn float_exact_round_trip() {
        for f in [0.1, 1e300, -2.2250738585072014e-308, 12345.6789] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, f, "{s}");
        }
    }

    #[test]
    fn json_macro_shapes() {
        let name = "hello";
        let count = 3u64;
        let v = json!({
            "name": name,
            "count": count,
            "nested": {"flag": true, "items": [1, 2, {"deep": null}]},
            "trailing": [1, 2,],
        });
        assert_eq!(v["name"], "hello");
        assert_eq!(v["count"], 3u64);
        assert_eq!(v["nested"]["items"][2]["deep"], Value::Null);
        assert_eq!(v["trailing"][1], 2u64);
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!([1, 2]), from_str::<Value>("[1,2]").unwrap());
        assert_eq!(json!(7i32), from_str::<Value>("7").unwrap());
    }

    #[test]
    fn pretty_printing() {
        let v = json!({"a": [1], "b": {}});
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": [\n    1\n  ],\n  \"b\": {}\n}");
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<Value>("1 trailing").is_err());
    }
}
